package logan

import (
	"errors"
	"sync"
	"testing"
)

func TestAlignerBackendsAgree(t *testing.T) {
	pairs := makePairs(32)
	cpuEng, err := NewAligner(DefaultOptions(60))
	if err != nil {
		t.Fatal(err)
	}
	defer cpuEng.Close()
	gpuOpt := DefaultOptions(60)
	gpuOpt.Backend = GPU
	gpuOpt.GPUs = 2
	gpuEng, err := NewAligner(gpuOpt)
	if err != nil {
		t.Fatal(err)
	}
	defer gpuEng.Close()

	cpu, cpuStats, err := cpuEng.Align(pairs)
	if err != nil {
		t.Fatal(err)
	}
	gpu, gpuStats, err := gpuEng.Align(pairs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pairs {
		if cpu[i] != gpu[i] {
			t.Fatalf("pair %d: cpu %+v != gpu %+v", i, cpu[i], gpu[i])
		}
	}
	if cpuStats.Cells != gpuStats.Cells {
		t.Fatalf("cells: cpu %d, gpu %d", cpuStats.Cells, gpuStats.Cells)
	}
	if gpuStats.DeviceTime <= 0 || gpuStats.GCUPS <= 0 {
		t.Fatalf("gpu stats %+v", gpuStats)
	}
}

func TestAlignerMatchesLegacyAlign(t *testing.T) {
	pairs := makePairs(16)
	opt := DefaultOptions(40)
	want, _, err := Align(pairs, opt)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewAligner(opt)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	got, _, err := eng.Align(pairs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("pair %d: legacy %+v != engine %+v", i, want[i], got[i])
		}
	}
}

func TestAlignerRepeatedGPUStatsStable(t *testing.T) {
	// The satellite fix: DeviceTime must come from the reusable pool's
	// modeled batch time, so identical batches report identical DeviceTime
	// (and hence stable GCUPS) no matter how often the engine is reused.
	pairs := makePairs(12)
	opt := DefaultOptions(50)
	opt.Backend = GPU
	eng, err := NewAligner(opt)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	_, first, err := eng.Align(pairs)
	if err != nil {
		t.Fatal(err)
	}
	for rep := 0; rep < 3; rep++ {
		_, st, err := eng.Align(pairs)
		if err != nil {
			t.Fatal(err)
		}
		if st.DeviceTime != first.DeviceTime {
			t.Fatalf("rep %d: DeviceTime %v != first %v", rep, st.DeviceTime, first.DeviceTime)
		}
	}
}

func TestAlignerEmptyBatch(t *testing.T) {
	eng, err := NewAligner(DefaultOptions(10))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	out, st, err := eng.Align(nil)
	if err != nil || len(out) != 0 || st.Pairs != 0 {
		t.Fatalf("empty batch: %v %v %v", out, st, err)
	}
}

func TestAlignerEmptySequenceRejected(t *testing.T) {
	eng, err := NewAligner(DefaultOptions(10))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	_, _, err = eng.Align([]Pair{{Query: nil, Target: []byte("ACGT"), SeedLen: 2}})
	if err == nil {
		t.Fatal("accepted a seed outside an empty query")
	}
}

func TestAlignerSeedAtBoundary(t *testing.T) {
	eng, err := NewAligner(DefaultOptions(30))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	s := []byte("ACGTACGTACGTACGTACGT")
	// Seed flush with the sequence start: no left extension.
	out, _, err := eng.Align([]Pair{{Query: s, Target: s, SeedQ: 0, SeedT: 0, SeedLen: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Score != int32(len(s)) || out[0].QBegin != 0 {
		t.Fatalf("start seed: %+v", out[0])
	}
	// Seed flush with the sequence end: no right extension.
	off := len(s) - 4
	out, _, err = eng.Align([]Pair{{Query: s, Target: s, SeedQ: off, SeedT: off, SeedLen: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Score != int32(len(s)) || out[0].QEnd != len(s) {
		t.Fatalf("end seed: %+v", out[0])
	}
}

func TestAlignerAlignIntoReusesDst(t *testing.T) {
	eng, err := NewAligner(DefaultOptions(20))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	pairs := makePairs(8)
	dst, _, err := eng.AlignInto(nil, pairs)
	if err != nil {
		t.Fatal(err)
	}
	dst2, _, err := eng.AlignInto(dst, pairs)
	if err != nil {
		t.Fatal(err)
	}
	if &dst[0] != &dst2[0] {
		t.Fatal("AlignInto reallocated despite sufficient capacity")
	}
}

func TestAlignerClosed(t *testing.T) {
	eng, err := NewAligner(DefaultOptions(10))
	if err != nil {
		t.Fatal(err)
	}
	eng.Close()
	eng.Close() // idempotent
	if _, _, err := eng.Align(makePairs(1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Align after Close: %v", err)
	}
}

func TestAlignerInvalidBase(t *testing.T) {
	eng, err := NewAligner(DefaultOptions(10))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	_, _, err = eng.Align([]Pair{{Query: []byte("ACGX"), Target: []byte("ACGT"), SeedLen: 2}})
	if err == nil {
		t.Fatal("accepted invalid base")
	}
}

func TestStreamOrderedResults(t *testing.T) {
	eng, err := NewAligner(DefaultOptions(40))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	s := eng.NewStream(3)
	const batches = 10
	go func() {
		for b := 0; b < batches; b++ {
			s.Submit(Batch{ID: int64(b), Pairs: makePairs(4)})
		}
		s.Close()
	}()
	got := 0
	for r := range s.Results() {
		if r.Err != nil {
			t.Errorf("batch %d: %v", r.ID, r.Err)
		}
		if r.ID != int64(got) {
			t.Fatalf("result %d has ID %d: out of order", got, r.ID)
		}
		if len(r.Alignments) != 4 || r.Stats.Pairs != 4 {
			t.Fatalf("batch %d: %d alignments, stats %+v", r.ID, len(r.Alignments), r.Stats)
		}
		got++
	}
	if got != batches {
		t.Fatalf("received %d of %d batches", got, batches)
	}
}

func TestStreamConcurrentSubmit(t *testing.T) {
	// Many producers share one stream; every batch must come back exactly
	// once. Run under -race this also vets the engine's internal pooling.
	eng, err := NewAligner(DefaultOptions(30))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	s := eng.NewStream(4)
	const producers, perProducer = 4, 5
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for b := 0; b < perProducer; b++ {
				s.Submit(Batch{ID: int64(p*perProducer + b), Pairs: makePairs(3)})
			}
		}(p)
	}
	go func() {
		wg.Wait()
		s.Close()
	}()
	seen := make(map[int64]bool)
	for r := range s.Results() {
		if r.Err != nil {
			t.Errorf("batch %d: %v", r.ID, r.Err)
		}
		if seen[r.ID] {
			t.Fatalf("batch %d delivered twice", r.ID)
		}
		seen[r.ID] = true
	}
	if len(seen) != producers*perProducer {
		t.Fatalf("received %d of %d batches", len(seen), producers*perProducer)
	}
}

func TestAlignerConcurrentAlign(t *testing.T) {
	for _, backend := range []Backend{CPU, GPU} {
		opt := DefaultOptions(30)
		opt.Backend = backend
		eng, err := NewAligner(opt)
		if err != nil {
			t.Fatal(err)
		}
		pairs := makePairs(10)
		want, _, err := eng.Align(pairs)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				got, _, err := eng.Align(pairs)
				if err != nil {
					t.Error(err)
					return
				}
				for i := range want {
					if got[i] != want[i] {
						t.Errorf("concurrent result diverged at %d", i)
						return
					}
				}
			}()
		}
		wg.Wait()
		eng.Close()
	}
}
