// Multigpu: the load-balancer scaling demo (paper §IV-C, Fig. 7). One
// batch of length-skewed pairs is aligned on pools of 1..8 simulated
// V100s under both partition strategies, showing why LOGAN weights by
// sequence length: with a few giant reads in the mix, round-robin leaves
// one device holding the bag.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"logan/internal/core"
	"logan/internal/loadbal"
	"logan/internal/seq"
)

func main() {
	rng := rand.New(rand.NewSource(3))

	// Length-skewed workload: mostly 1-2 kb reads plus a handful of 8 kb
	// giants (long-read length distributions have heavy tails).
	pairs := seq.RandPairSet(rng, seq.PairSetOptions{
		N: 56, MinLen: 1000, MaxLen: 2000, ErrorRate: 0.15, SeedLen: 17,
	})
	giants := seq.RandPairSet(rng, seq.PairSetOptions{
		N: 8, MinLen: 8000, MaxLen: 9000, ErrorRate: 0.15, SeedLen: 17,
	})
	pairs = append(pairs, giants...)
	// Shuffle so the giants land at arbitrary batch positions, as they
	// would coming out of an overlapper.
	rng.Shuffle(len(pairs), func(i, j int) { pairs[i], pairs[j] = pairs[j], pairs[i] })

	// Part 1: real execution across pools — results must be identical to
	// single-device alignment, and the balancer reports its imbalance.
	cfg := core.DefaultConfig(100)
	single, err := loadbal.NewV100Pool(1)
	if err != nil {
		log.Fatal(err)
	}
	ref, err := single.Align(pairs, cfg, loadbal.ByLength)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("GPUs  strategy      identical-scores  work-imbalance")
	for _, g := range []int{2, 4, 8} {
		for _, strat := range []struct {
			name string
			s    loadbal.Strategy
		}{{"by-length", loadbal.ByLength}, {"round-robin", loadbal.RoundRobin}} {
			pool, err := loadbal.NewV100Pool(g)
			if err != nil {
				log.Fatal(err)
			}
			res, err := pool.Align(pairs, cfg, strat.s)
			if err != nil {
				log.Fatal(err)
			}
			same := 0
			for i := range ref.Results {
				if res.Results[i].Score == ref.Results[i].Score {
					same++
				}
			}
			fmt.Printf("%4d  %-12s  %13d/%d  %14.3f\n", g, strat.name, same, len(pairs), res.Imbalance)
		}
	}

	// Part 2: partition quality at the paper's workload size (100K
	// pairs) — weights only, no alignment needed.
	fmt.Println("\npartition quality at 100K pairs (max device load / mean):")
	weights := make([]int64, 100000)
	for i := range weights {
		ln := 2500 + rng.Intn(5001)
		if rng.Intn(100) < 2 { // heavy tail
			ln *= 4
		}
		weights[i] = int64(2 * ln)
	}
	fmt.Println("GPUs  by-length  round-robin")
	for _, g := range []int{2, 4, 6, 8} {
		lpt := loadbal.ImbalanceOf(weights, loadbal.PartitionWeights(weights, g, loadbal.ByLength))
		rr := loadbal.ImbalanceOf(weights, loadbal.PartitionWeights(weights, g, loadbal.RoundRobin))
		fmt.Printf("%4d  %9.4f  %11.4f\n", g, lpt, rr)
	}
	fmt.Println("\nby-length (LPT) keeps the imbalance near 1.0; round-robin strands")
	fmt.Println("giants on one device, capping the multi-GPU speed-up — the ablation")
	fmt.Println("behind the paper's load-balancer design point.")
}
