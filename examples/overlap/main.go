// Overlap: the paper's headline application (§V) end to end — simulate a
// small long-read sequencing run, detect overlaps with the BELLA pipeline,
// align candidates with LOGAN on simulated GPUs, and score the result
// against the simulator's ground truth. This is the many-to-many workload
// the X-drop algorithm exists for: most candidate pairs are genuine, but
// repeats plant spurious ones that the aligner must reject cheaply.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"logan/internal/bella"
	"logan/internal/genome"
	"logan/internal/loadbal"
)

func main() {
	rng := rand.New(rand.NewSource(7))

	// A 100 kb genome with 5% of its length covered by repeats, read at
	// 6x coverage with 15% error — a miniature of the paper's E. coli
	// experiment.
	g := genome.Synthetic(rng, "mini", genome.SyntheticOptions{
		Length: 100_000, RepeatFrac: 0.05, RepeatLen: 1500,
	})
	rs := genome.Simulate(rng, g, genome.SimOptions{
		Coverage: 6, MinLen: 1200, MaxLen: 3000, ErrorRate: 0.15,
	})
	fmt.Printf("genome %d bp (+repeats), %d reads at ~6x\n", len(g.Seq), len(rs.Reads))

	pool, err := loadbal.NewV100Pool(2)
	if err != nil {
		log.Fatal(err)
	}

	for _, x := range []int32{2, 5, 25} {
		cfg := bella.DefaultConfig(6, 0.15, x)
		cfg.MinOverlap = 600
		start := time.Now()
		res, err := bella.Run(rs, cfg, bella.GPUAligner{Pool: pool})
		if err != nil {
			log.Fatal(err)
		}
		acc := bella.Evaluate(rs, res.Overlaps, 600)
		fmt.Printf("X=%-3d candidates=%-5d overlaps=%-5d cells=%-10d recall=%.3f precision=%.3f (%v)\n",
			x, res.Candidates, len(res.Overlaps), res.Align.Cells,
			acc.Recall, acc.Precision, time.Since(start).Round(time.Millisecond))
	}
	fmt.Println("larger X explores more cells and recovers more true overlaps —")
	fmt.Println("the accuracy/runtime trade-off Tables IV/V sweep.")
}
