// Overlap: the paper's headline application (§V) end to end on the public
// API — simulate a small long-read sequencing run, detect and align
// overlaps with logan.Overlapper (the BELLA pipeline over a shared
// Aligner engine), and score the result against the simulation's own
// ground truth. This is the many-to-many workload the X-drop algorithm
// exists for: most candidate pairs are genuine, but repeats plant
// spurious ones that the aligner must reject cheaply.
//
// The example deliberately imports nothing but package logan and the
// standard library: everything it needs — ingestion, configuration,
// progress, PAF records — is on the public surface.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"logan"
)

const bases = "ACGT"

// simRead is one sampled read with the provenance the simulator knows.
type simRead struct {
	start, end int
}

// simulate builds a genome with planted repeats and samples error-laden
// reads from both strands, returning the reads plus their provenance.
func simulate(rng *rand.Rand, genomeLen int, coverage, errRate float64) ([]logan.Read, []simRead) {
	g := make([]byte, genomeLen)
	for i := range g {
		g[i] = bases[rng.Intn(4)]
	}
	// Plant repeats: ~5% of the genome covered by 1.5 kb duplicated
	// segments, the false-candidate generator.
	repLen := 1500
	for c := 0; c < genomeLen/20/repLen; c++ {
		src, dst := rng.Intn(genomeLen-repLen), rng.Intn(genomeLen-repLen)
		copy(g[dst:dst+repLen], g[src:src+repLen])
	}

	var reads []logan.Read
	var truth []simRead
	var sampled int
	for id := 0; float64(sampled) < coverage*float64(genomeLen); id++ {
		ln := 1200 + rng.Intn(1800)
		start := rng.Intn(genomeLen - ln)
		window := make([]byte, ln)
		copy(window, g[start:start+ln])
		// Substitution-error channel.
		for i := range window {
			if rng.Float64() < errRate {
				window[i] = bases[rng.Intn(4)]
			}
		}
		if rng.Intn(2) == 1 { // reverse strand
			rc := make([]byte, ln)
			for i, b := range window {
				var c byte
				switch b {
				case 'A':
					c = 'T'
				case 'C':
					c = 'G'
				case 'G':
					c = 'C'
				default:
					c = 'A'
				}
				rc[ln-1-i] = c
			}
			window = rc
		}
		reads = append(reads, logan.Read{Name: fmt.Sprintf("read%d", id), Seq: window})
		truth = append(truth, simRead{start: start, end: start + ln})
		sampled += ln
	}
	return reads, truth
}

// trueOverlaps returns the set of read pairs whose genomic windows
// overlap by at least minOv bases, keyed "i-j" with i < j.
func trueOverlaps(truth []simRead, minOv int) map[[2]int]bool {
	out := map[[2]int]bool{}
	for i := range truth {
		for j := i + 1; j < len(truth); j++ {
			lo := max(truth[i].start, truth[j].start)
			hi := min(truth[i].end, truth[j].end)
			if hi-lo >= minOv {
				out[[2]int{i, j}] = true
			}
		}
	}
	return out
}

func main() {
	rng := rand.New(rand.NewSource(7))
	const minOv = 600

	reads, truth := simulate(rng, 100_000, 6, 0.15)
	fmt.Printf("100 kb genome (+repeats), %d reads at ~6x\n", len(reads))

	// One Hybrid engine — CPU workers plus two simulated V100s — shared
	// by every run, exactly as a serving process would hold it.
	eng, err := logan.NewAligner(logan.EngineOptions{Backend: logan.Hybrid, GPUs: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()
	ov, err := logan.NewOverlapper(eng, logan.OverlapperOptions{})
	if err != nil {
		log.Fatal(err)
	}

	want := trueOverlaps(truth, minOv)
	for _, x := range []int32{2, 5, 25} {
		cfg := logan.DefaultOverlapConfig(6, 0.15, x)
		cfg.MinOverlap = minOv
		start := time.Now()
		res, err := ov.Run(context.Background(), reads, cfg)
		if err != nil {
			log.Fatal(err)
		}
		tp := 0
		for _, r := range res.Records {
			i, j := r.QIndex, r.TIndex
			if i > j {
				i, j = j, i
			}
			if want[[2]int{i, j}] {
				tp++
			}
		}
		recall, precision := 0.0, 0.0
		if len(want) > 0 {
			recall = float64(tp) / float64(len(want))
		}
		if len(res.Records) > 0 {
			precision = float64(tp) / float64(len(res.Records))
		}
		fmt.Printf("X=%-3d candidates=%-5d overlaps=%-5d cells=%-10d recall=%.3f precision=%.3f (%v)\n",
			x, res.Stats.CandidatePairs, len(res.Records), res.Stats.Cells,
			recall, precision, time.Since(start).Round(time.Millisecond))
	}
	fmt.Println("larger X explores more cells and recovers more true overlaps —")
	fmt.Println("the accuracy/runtime trade-off Tables IV/V sweep.")
}
