// Roofline: the paper's §VII analysis as a runnable demo. Aligns a batch
// at several X values, scales each launch's counted work to a 100K-pair
// workload, and prints where the kernel lands on the V100 instruction
// Roofline — showing that the X-drop kernel is compute-bound and close to
// the Eq. (1) adapted ceiling across the sweep.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"logan/internal/bench"
	"logan/internal/core"
	"logan/internal/cuda"
	"logan/internal/perfmodel"
	"logan/internal/roofline"
	"logan/internal/seq"
)

func main() {
	rng := rand.New(rand.NewSource(5))
	pairs := seq.RandPairSet(rng, seq.PairSetOptions{
		N: 8, MinLen: 2500, MaxLen: 7500, ErrorRate: 0.15, SeedLen: 17, SeedPosFrac: 0.05,
	})
	spec := cuda.TeslaV100()
	timer := perfmodel.NewV100Timer()
	model := roofline.ForDevice(spec)
	factor := 100000.0 / float64(len(pairs))

	fmt.Printf("V100 instruction roofline: INT32 ceiling %.1f warp GIPS, ridge at %.3f instr/B\n\n",
		model.INT32GIPS, model.Ridge())
	fmt.Println("    X     OI(instr/B)  achieved-GIPS  adapted-ceiling  bound    fraction")
	for _, x := range []int32{10, 100, 1000, 5000} {
		dev := cuda.MustV100()
		res, err := core.AlignBatch(dev, pairs, core.DefaultConfig(x))
		if err != nil {
			log.Fatal(err)
		}
		scaled := bench.ScaleStats(res.Stats, factor)
		cuda.ApplyCacheModel(spec, &scaled)
		rep := roofline.Analyze(model, scaled, timer.KernelTime(spec, scaled))
		bound := "memory"
		if rep.ComputeBound {
			bound = "compute"
		}
		fmt.Printf("%5d  %12.3f  %13.1f  %15.1f  %-7s  %8.2f\n",
			x, rep.OI, rep.AchievedGIPS, rep.AdaptedCeiling, bound, rep.CeilingFraction)
	}

	// Full plot at the paper's Fig. 13 operating point.
	dev := cuda.MustV100()
	res, err := core.AlignBatch(dev, pairs, core.DefaultConfig(100))
	if err != nil {
		log.Fatal(err)
	}
	scaled := bench.ScaleStats(res.Stats, factor)
	cuda.ApplyCacheModel(spec, &scaled)
	rep := roofline.Analyze(model, scaled, timer.KernelTime(spec, scaled))
	fmt.Println()
	fmt.Println(rep.Render(64, 18))
}
