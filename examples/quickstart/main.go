// Quickstart: the 60-second tour of the v2 public API. One engine per
// backend shape (NewAligner + EngineOptions), per-request configuration
// (Config: X plus a scoring scheme), and a context on every call — the
// same engine aligns DNA under linear and affine gap models and verifies
// the CPU and simulated-GPU backends agree bit for bit.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"logan"
	"logan/internal/seq"
)

func main() {
	ctx := context.Background()

	// Fabricate a realistic long-read pair: a 5 kb sequence and a noisy
	// copy with ~15% error (PacBio-style), sharing an exact 17-mer seed.
	rng := rand.New(rand.NewSource(1))
	reference := seq.RandSeq(rng, 5000)
	noisy := seq.Mutate(rng, reference, seq.PacBioProfile(0.15))
	seedQ, seedLen := 2500, 17
	seedT := min(seedQ, len(noisy)-seedLen)
	copy(noisy[seedT:seedT+seedLen], reference[seedQ:seedQ+seedLen])
	pair := logan.Pair{
		Query: []byte(reference), Target: []byte(noisy),
		SeedQ: seedQ, SeedT: seedT, SeedLen: seedLen,
	}

	// One CPU engine, reused for every call; the configuration is
	// per-request. X=100 is the paper's default sweep point.
	cpu, err := logan.NewAligner(logan.EngineOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer cpu.Close()

	out, _, err := cpu.Align(ctx, []logan.Pair{pair}, logan.DefaultConfig(100))
	if err != nil {
		log.Fatal(err)
	}
	aln := out[0]
	fmt.Printf("single pair: score=%d, query[%d:%d) x target[%d:%d), %d DP cells\n",
		aln.Score, aln.QBegin, aln.QEnd, aln.TBegin, aln.TEnd, aln.Cells)

	// The same engine, a different request: affine gaps (Gotoh). No
	// rebuild — scoring is part of the request, not the engine.
	affine := logan.Config{X: 100, Scoring: logan.AffineScoring(1, -1, -2, -1)}
	out, _, err = cpu.Align(ctx, []logan.Pair{pair}, affine)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("same engine, affine gaps (open -2, extend -1): score=%d\n", out[0].Score)

	// Batch alignment: CPU baseline vs simulated-GPU LOGAN.
	raw := seq.RandPairSet(rng, seq.PairSetOptions{
		N: 64, MinLen: 1000, MaxLen: 3000, ErrorRate: 0.15, SeedLen: 17,
	})
	pairs := make([]logan.Pair, len(raw))
	for i, p := range raw {
		pairs[i] = logan.Pair{
			Query: []byte(p.Query), Target: []byte(p.Target),
			SeedQ: p.SeedQPos, SeedT: p.SeedTPos, SeedLen: p.SeedLen,
		}
	}

	gpu, err := logan.NewAligner(logan.EngineOptions{Backend: logan.GPU})
	if err != nil {
		log.Fatal(err)
	}
	defer gpu.Close()

	cfg := logan.DefaultConfig(100)
	cpuRes, cpuStats, err := cpu.Align(ctx, pairs, cfg)
	if err != nil {
		log.Fatal(err)
	}
	gpuRes, gpuStats, err := gpu.Align(ctx, pairs, cfg)
	if err != nil {
		log.Fatal(err)
	}

	same := 0
	for i := range pairs {
		if cpuRes[i].Score == gpuRes[i].Score {
			same++
		}
	}
	fmt.Printf("batch of %d: CPU %.1fms, GPU modeled %.1fms, identical scores %d/%d\n",
		len(pairs),
		cpuStats.WallTime.Seconds()*1e3,
		gpuStats.DeviceTime.Seconds()*1e3,
		same, len(pairs))
	fmt.Printf("GPU batch: %d DP cells, %.2f modeled GCUPS\n", gpuStats.Cells, gpuStats.GCUPS)
}
