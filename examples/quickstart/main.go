// Quickstart: align two long reads with the public API, on both backends,
// and verify they agree — the 60-second tour of the library.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"logan"
	"logan/internal/seq"
)

func main() {
	// Fabricate a realistic long-read pair: a 5 kb sequence and a noisy
	// copy with ~15% error (PacBio-style), sharing an exact 17-mer seed.
	rng := rand.New(rand.NewSource(1))
	reference := seq.RandSeq(rng, 5000)
	noisy := seq.Mutate(rng, reference, seq.PacBioProfile(0.15))
	seedQ, seedLen := 2500, 17
	seedT := min(seedQ, len(noisy)-seedLen)
	copy(noisy[seedT:seedT+seedLen], reference[seedQ:seedQ+seedLen])

	// Single-pair alignment with X=100 (the paper's default sweep point).
	opt := logan.DefaultOptions(100)
	aln, err := logan.AlignPair([]byte(reference), []byte(noisy), seedQ, seedT, seedLen, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("single pair: score=%d, query[%d:%d) x target[%d:%d), %d DP cells\n",
		aln.Score, aln.QBegin, aln.QEnd, aln.TBegin, aln.TEnd, aln.Cells)

	// Batch alignment: CPU baseline vs simulated-GPU LOGAN.
	raw := seq.RandPairSet(rng, seq.PairSetOptions{
		N: 64, MinLen: 1000, MaxLen: 3000, ErrorRate: 0.15, SeedLen: 17,
	})
	pairs := make([]logan.Pair, len(raw))
	for i, p := range raw {
		pairs[i] = logan.Pair{
			Query: []byte(p.Query), Target: []byte(p.Target),
			SeedQ: p.SeedQPos, SeedT: p.SeedTPos, SeedLen: p.SeedLen,
		}
	}

	cpuRes, cpuStats, err := logan.Align(pairs, opt)
	if err != nil {
		log.Fatal(err)
	}
	opt.Backend = logan.GPU
	gpuRes, gpuStats, err := logan.Align(pairs, opt)
	if err != nil {
		log.Fatal(err)
	}

	same := 0
	for i := range pairs {
		if cpuRes[i].Score == gpuRes[i].Score {
			same++
		}
	}
	fmt.Printf("batch of %d: CPU %.1fms, GPU modeled %.1fms, identical scores %d/%d\n",
		len(pairs),
		cpuStats.WallTime.Seconds()*1e3,
		gpuStats.DeviceTime.Seconds()*1e3,
		same, len(pairs))
	fmt.Printf("GPU batch: %d DP cells, %.2f modeled GCUPS\n", gpuStats.Cells, gpuStats.GCUPS)
}
