// Protein: the paper's §VIII future-work item, on the supported public
// API — X-drop seed-and-extend under BLOSUM62 via logan.MatrixScoring. A
// simulated protein family (a parent sequence and diverged homologs) is
// searched against a query: homologs extend into high-scoring alignments
// around a conserved motif, unrelated sequences X-drop out almost
// immediately, exactly the behaviour that makes the algorithm attractive
// for homology search. The whole family is aligned as one engine batch —
// the same Aligner that serves DNA traffic, parameterized per request.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"logan"
)

const residues = "ARNDCQEGHILKMFPSTWYV"

func randProtein(rng *rand.Rand, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = residues[rng.Intn(len(residues))]
	}
	return out
}

// diverge substitutes a fraction of residues, preserving a conserved
// motif at [motifPos, motifPos+motifLen).
func diverge(rng *rand.Rand, p []byte, frac float64, motifPos, motifLen int) []byte {
	out := append([]byte(nil), p...)
	for i := range out {
		if i >= motifPos && i < motifPos+motifLen {
			continue
		}
		if rng.Float64() < frac {
			out[i] = residues[rng.Intn(len(residues))]
		}
	}
	return out
}

func main() {
	rng := rand.New(rand.NewSource(11))

	// A 400-residue query with a conserved 12-residue motif at 200.
	query := randProtein(rng, 400)
	const motifPos, motifLen = 200, 12

	type subject struct {
		name string
		seq  []byte
	}
	subjects := []subject{
		{"homolog-20%", diverge(rng, query, 0.20, motifPos, motifLen)},
		{"homolog-40%", diverge(rng, query, 0.40, motifPos, motifLen)},
		{"homolog-60%", diverge(rng, query, 0.60, motifPos, motifLen)},
		{"unrelated", append(randProtein(rng, 188), append(append([]byte{}, query[motifPos:motifPos+motifLen]...), randProtein(rng, 200)...)...)},
	}

	// One batch: every subject against the query, seeded at the motif.
	// The motif sits at 200 in homologs, at 188 in the unrelated decoy
	// (where only the motif matches).
	pairs := make([]logan.Pair, len(subjects))
	for i, s := range subjects {
		tPos := motifPos
		if s.name == "unrelated" {
			tPos = 188
		}
		pairs[i] = logan.Pair{
			Query: query, Target: s.seq,
			SeedQ: motifPos, SeedT: tPos, SeedLen: motifLen,
		}
	}

	// Engine shape and scoring are independent: a stock CPU engine, with
	// BLOSUM62 selected per request. (Matrix scoring is a CPU-engine
	// family; a Hybrid engine would route it to its CPU shards.)
	eng, err := logan.NewAligner(logan.EngineOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()
	cfg := logan.Config{X: 40, Scoring: logan.MatrixScoring(logan.Blosum62(-6))}

	out, _, err := eng.Align(context.Background(), pairs, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("BLOSUM62 X-drop homology search (seed = conserved motif, X=40)")
	fmt.Println("subject       score  aligned-query  aligned-subject  cells")
	for i, s := range subjects {
		r := out[i]
		fmt.Printf("%-12s  %5d  [%3d,%3d)      [%3d,%3d)        %d\n",
			s.name, r.Score, r.QBegin, r.QEnd, r.TBegin, r.TEnd, r.Cells)
	}
	fmt.Println("\ncloser homologs extend further and score higher; the unrelated")
	fmt.Println("subject is abandoned at the motif edges — X-drop doing for protein")
	fmt.Println("homology what it does for long-read overlaps.")
}
