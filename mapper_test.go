package logan

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"logan/internal/genome"
	"logan/internal/seq"
)

// mapTestSet simulates a repeat-free genome and reads with a low error
// rate, so every read has exactly one true locus and the golden test can
// demand near-perfect placement.
func mapTestSet(t testing.TB, seed int64, genomeLen int) (genome.Genome, genome.ReadSet) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := genome.Synthetic(rng, "ref", genome.SyntheticOptions{Length: genomeLen})
	rs := genome.Simulate(rng, g, genome.SimOptions{
		Coverage: 2, MinLen: 500, MaxLen: 1500, ErrorRate: 0.03,
	})
	return g, rs
}

func genomeFasta(g genome.Genome) string {
	return ">" + g.Name + "\n" + g.Seq.String() + "\n"
}

func mapReadsOf(rs genome.ReadSet) []Read {
	reads := make([]Read, len(rs.Reads))
	for i, r := range rs.Reads {
		reads[i] = Read{Name: r.Name(), Seq: r.Seq}
	}
	return reads
}

func newTestMapper(t testing.TB, backend Backend) (*Mapper, *Aligner) {
	t.Helper()
	eng, err := NewAligner(EngineOptions{Backend: backend})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	m, err := NewMapper(eng, MapperOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return m, eng
}

// primaryRecords returns the first (primary) record of each read that
// produced any, keyed by read index.
func primaryRecords(recs []OverlapRecord) map[int]OverlapRecord {
	prim := make(map[int]OverlapRecord)
	for _, rec := range recs {
		if _, ok := prim[rec.QIndex]; !ok {
			prim[rec.QIndex] = rec
		}
	}
	return prim
}

// TestMapperGoldenPlacement is the end-to-end accuracy gate: simulated
// reads from a repeat-free genome must come back with ≥99% of primary
// placements at the true locus on the true strand, on the CPU and Hybrid
// backends.
func TestMapperGoldenPlacement(t *testing.T) {
	g, rs := mapTestSet(t, 42, 100_000)
	reads := mapReadsOf(rs)
	for _, tc := range []struct {
		name    string
		backend Backend
	}{
		{"cpu", CPU},
		{"hybrid", Hybrid},
	} {
		t.Run(tc.name, func(t *testing.T) {
			m, _ := newTestMapper(t, tc.backend)
			st, err := m.Build(context.Background(), strings.NewReader(genomeFasta(g)), IndexOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if st.Refs != 1 || st.Bases != int64(len(g.Seq)) || st.Kept == 0 {
				t.Fatalf("index stats %+v", st)
			}
			res, err := m.Map(context.Background(), reads, DefaultMapConfig(100))
			if err != nil {
				t.Fatal(err)
			}
			prim := primaryRecords(res.Records)
			if len(prim) < len(reads)*95/100 {
				t.Fatalf("only %d/%d reads produced a placement", len(prim), len(reads))
			}
			correct, confident := 0, 0
			for i, r := range rs.Reads {
				rec, ok := prim[i]
				if !ok {
					continue
				}
				wantStrand := byte('+')
				if r.RC {
					wantStrand = '-'
				}
				// The true locus is the sampled window; the mapped target
				// interval must land on it (a wrong locus on a 100 kbp
				// repeat-free genome shares essentially no overlap).
				lo, hi := max(rec.TStart, r.Start), min(rec.TEnd, r.End)
				if rec.Strand == wantStrand && hi-lo >= len(r.Seq)/2 {
					correct++
					if rec.MapQ > 0 {
						confident++
					}
				}
			}
			if frac := float64(correct) / float64(len(prim)); frac < 0.99 {
				t.Fatalf("true-locus placement rate %.4f (%d/%d), want >= 0.99", frac, correct, len(prim))
			}
			if confident < correct*9/10 {
				t.Fatalf("only %d/%d correct placements have MapQ > 0", confident, correct)
			}
			if res.Stats.Mapped != len(prim) || res.Stats.Reads != len(reads) {
				t.Fatalf("stats %+v disagree with %d placed reads", res.Stats, len(prim))
			}
			if res.Stats.Anchors == 0 || res.Stats.Chains == 0 || res.Stats.Extensions == 0 {
				t.Fatalf("empty pipeline stats %+v", res.Stats)
			}
		})
	}
}

// TestMapperSaveLoadIdenticalPAF pins index persistence end to end: a
// mapper that loads the saved index must emit byte-identical PAF to the
// mapper that built it.
func TestMapperSaveLoadIdenticalPAF(t *testing.T) {
	g, rs := mapTestSet(t, 7, 60_000)
	reads := mapReadsOf(rs)
	cfg := DefaultMapConfig(80)

	built, _ := newTestMapper(t, CPU)
	if _, err := built.Build(context.Background(), strings.NewReader(genomeFasta(g)), IndexOptions{}); err != nil {
		t.Fatal(err)
	}
	var saved bytes.Buffer
	if err := built.Save(&saved); err != nil {
		t.Fatal(err)
	}

	loaded, _ := newTestMapper(t, CPU)
	lst, err := loaded.Load(bytes.NewReader(saved.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	bst, _ := built.IndexStats()
	if lst != bst {
		t.Fatalf("loaded stats %+v != built stats %+v", lst, bst)
	}

	pafOf := func(m *Mapper) []byte {
		res, err := m.Map(context.Background(), reads, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WritePAF(&buf, res.Records); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := pafOf(built), pafOf(loaded)
	if len(a) == 0 {
		t.Fatal("no PAF output from the built mapper")
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("built and loaded mappers disagree:\n%d bytes vs %d bytes", len(a), len(b))
	}
}

// TestMapperCoalescerRouteIdentical: routing extension batches through
// the request coalescer must not change the PAF output relative to the
// engine-direct path.
func TestMapperCoalescerRouteIdentical(t *testing.T) {
	g, rs := mapTestSet(t, 13, 60_000)
	reads := mapReadsOf(rs)
	cfg := DefaultMapConfig(80)

	direct, eng := newTestMapper(t, CPU)
	if _, err := direct.Build(context.Background(), strings.NewReader(genomeFasta(g)), IndexOptions{}); err != nil {
		t.Fatal(err)
	}
	coal := eng.NewCoalescer(CoalescerOptions{MaxWait: time.Millisecond})
	defer coal.Close()
	routed, err := NewMapper(eng, MapperOptions{Coalescer: coal})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := routed.Load(indexBytes(t, direct)); err != nil {
		t.Fatal(err)
	}

	resA, err := direct.Map(context.Background(), reads, cfg)
	if err != nil {
		t.Fatal(err)
	}
	resB, err := routed.Map(context.Background(), reads, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := WritePAF(&a, resA.Records); err != nil {
		t.Fatal(err)
	}
	if err := WritePAF(&b, resB.Records); err != nil {
		t.Fatal(err)
	}
	if a.Len() == 0 || !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("coalescer-routed PAF differs from engine-direct (%d vs %d bytes)", a.Len(), b.Len())
	}
}

func indexBytes(t *testing.T, m *Mapper) *bytes.Reader {
	t.Helper()
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return bytes.NewReader(buf.Bytes())
}

// TestMapFastaMatchesMap: the streamed-FASTA entry point must produce the
// same records as Map over pre-parsed reads.
func TestMapFastaMatchesMap(t *testing.T) {
	g, rs := mapTestSet(t, 19, 40_000)
	reads := mapReadsOf(rs)
	cfg := DefaultMapConfig(80)

	m, _ := newTestMapper(t, CPU)
	if _, err := m.Build(context.Background(), strings.NewReader(genomeFasta(g)), IndexOptions{}); err != nil {
		t.Fatal(err)
	}
	var fa strings.Builder
	for _, r := range reads {
		fmt.Fprintf(&fa, ">%s\n%s\n", r.Name, r.Seq)
	}
	resA, err := m.Map(context.Background(), reads, cfg)
	if err != nil {
		t.Fatal(err)
	}
	resB, err := m.MapFasta(context.Background(), strings.NewReader(fa.String()), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := WritePAF(&a, resA.Records); err != nil {
		t.Fatal(err)
	}
	if err := WritePAF(&b, resB.Records); err != nil {
		t.Fatal(err)
	}
	if a.Len() == 0 || !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("MapFasta PAF differs from Map (%d vs %d bytes)", a.Len(), b.Len())
	}
}

func TestMapperNoIndex(t *testing.T) {
	m, _ := newTestMapper(t, CPU)
	if m.Ready() {
		t.Fatal("fresh mapper reports Ready")
	}
	if _, ok := m.IndexStats(); ok {
		t.Fatal("fresh mapper reports index stats")
	}
	if _, err := m.Map(context.Background(), []Read{{Name: "r", Seq: []byte("ACGT")}}, DefaultMapConfig(50)); !errors.Is(err, ErrNoIndex) {
		t.Fatalf("Map without index: err = %v, want ErrNoIndex", err)
	}
	if err := m.Save(new(bytes.Buffer)); !errors.Is(err, ErrNoIndex) {
		t.Fatalf("Save without index: err = %v, want ErrNoIndex", err)
	}
}

func TestMapConfigValidate(t *testing.T) {
	if err := (MapConfig{}).Validate(); err == nil {
		t.Error("zero MapConfig validated")
	}
	bad := DefaultMapConfig(50)
	bad.Scoring = AffineScoring(1, -1, -2, -1)
	if err := bad.Validate(); err == nil {
		t.Error("affine scoring accepted by the mapping pipeline")
	}
	bad = DefaultMapConfig(-1)
	if err := bad.Validate(); err == nil {
		t.Error("negative X accepted")
	}
	bad = DefaultMapConfig(50)
	bad.MaxGap = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative MaxGap accepted")
	}
	if err := DefaultMapConfig(50).Validate(); err != nil {
		t.Errorf("default config rejected: %v", err)
	}

	m, _ := newTestMapper(t, CPU)
	if _, err := m.Map(context.Background(), nil, MapConfig{}); err == nil {
		t.Error("Map accepted an invalid config")
	}
}

func TestMapperEdgeInputs(t *testing.T) {
	g, _ := mapTestSet(t, 23, 20_000)
	m, _ := newTestMapper(t, CPU)
	if _, err := m.Build(context.Background(), strings.NewReader(genomeFasta(g)), IndexOptions{}); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultMapConfig(50)

	// No reads at all.
	res, err := m.Map(context.Background(), nil, cfg)
	if err != nil || len(res.Records) != 0 || res.Stats.Reads != 0 {
		t.Fatalf("empty input: %+v err %v", res, err)
	}
	// Reads shorter than k map nowhere but must not error.
	res, err = m.Map(context.Background(), []Read{{Name: "tiny", Seq: []byte("ACGT")}}, cfg)
	if err != nil || len(res.Records) != 0 || res.Stats.Mapped != 0 {
		t.Fatalf("short read: %+v err %v", res, err)
	}
	// Invalid bases are rejected up front with the read named.
	if _, err := m.Map(context.Background(), []Read{{Name: "bad", Seq: []byte("ACG!")}}, cfg); err == nil || !strings.Contains(err.Error(), "bad") {
		t.Fatalf("invalid read: err = %v", err)
	}
	// A read of a sequence absent from the reference yields nothing.
	rng := rand.New(rand.NewSource(99))
	alien := seq.RandSeq(rng, 800)
	res, err = m.Map(context.Background(), []Read{{Name: "alien", Seq: alien}}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Mapped != 0 {
		t.Fatalf("random 800 bp read mapped: %+v", res.Records)
	}
}

func TestMapperProgressAndCancel(t *testing.T) {
	g, rs := mapTestSet(t, 29, 40_000)
	reads := mapReadsOf(rs)
	m, _ := newTestMapper(t, CPU)
	if _, err := m.Build(context.Background(), strings.NewReader(genomeFasta(g)), IndexOptions{}); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultMapConfig(80)
	cfg.BatchReads = 8
	var stages []MapStage
	var last MapProgress
	cfg.OnProgress = func(p MapProgress) {
		if len(stages) == 0 || stages[len(stages)-1] != p.Stage {
			stages = append(stages, p.Stage)
		}
		last = p
	}
	res, err := m.Map(context.Background(), reads, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(stages) < 3 || stages[0] != MapStageSeed || stages[len(stages)-1] != MapStageDone {
		t.Fatalf("stage sequence %v", stages)
	}
	if last.ReadsSeeded != len(reads) || last.Mapped != res.Stats.Mapped ||
		last.ExtensionsDone != int(res.Stats.Extensions) || last.ExtensionsDone != last.ExtensionsTotal {
		t.Fatalf("final progress %+v disagrees with stats %+v", last, res.Stats)
	}

	// MapFasta additionally reports ingest progress.
	stages = stages[:0]
	var fa strings.Builder
	for _, r := range reads[:16] {
		fmt.Fprintf(&fa, ">%s\n%s\n", r.Name, r.Seq)
	}
	if _, err := m.MapFasta(context.Background(), strings.NewReader(fa.String()), cfg); err != nil {
		t.Fatal(err)
	}
	if stages[0] != MapStageIngest {
		t.Fatalf("MapFasta stage sequence %v", stages)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.Map(ctx, reads, cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Map: err = %v", err)
	}
	if _, err := m.Build(ctx, strings.NewReader(genomeFasta(g)), IndexOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Build: err = %v", err)
	}
}

// TestMapperSecondaryPlacements: with a duplicated segment in the
// reference, a read from the repeat maps with a secondary placement and a
// collapsed mapping quality.
func TestMapperSecondaryPlacements(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	s := seq.RandSeq(rng, 30_000)
	// Plant an exact 2 kbp duplication far from itself.
	copy(s[20_000:22_000], s[5_000:7_000])
	m, _ := newTestMapper(t, CPU)
	fa := ">dup\n" + s.String() + "\n"
	if _, err := m.Build(context.Background(), strings.NewReader(fa), IndexOptions{}); err != nil {
		t.Fatal(err)
	}
	read := Read{Name: "rep", Seq: s.Sub(5_200, 6_800)}
	cfg := DefaultMapConfig(80)
	res, err := m.Map(context.Background(), []Read{read}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) < 2 {
		t.Fatalf("repeat read produced %d records, want primary + secondary: %+v", len(res.Records), res.Records)
	}
	if res.Records[0].MapQ != 0 {
		t.Fatalf("ambiguous primary has MapQ %d, want 0", res.Records[0].MapQ)
	}
	// Primaries only when MaxSecondary is 0.
	cfg.MaxSecondary = 0
	res, err = m.Map(context.Background(), []Read{read}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 1 {
		t.Fatalf("MaxSecondary=0 produced %d records", len(res.Records))
	}
}
