package logan

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// calibrate runs one engine batch so the backend layer has a throughput
// estimate, then returns a coalescer whose cells-per-pair EWMA is seeded —
// the two inputs of the drain-rate projection — without a flusher
// goroutine, so the tests below own the queue state.
func calibratedCoalescer(t *testing.T, eng *Aligner, opt CoalescerOptions) *Coalescer {
	t.Helper()
	if _, _, err := eng.Align(context.Background(), makePairsSeed(8, 7), cfgT); err != nil {
		t.Fatal(err)
	}
	c := eng.newCoalescer(opt)
	// Seed the work estimate directly (a live flusher would measure it
	// from its first merged batch).
	c.t.cellsPerPair.Set(5000)
	if c.drainPairsPerSec() <= 0 {
		t.Fatal("drain rate not calibrated")
	}
	return c
}

// TestAdmissionFixedBudget: MaxPending > 0 selects the legacy fixed
// pair-budget mode — the delay projection never sheds, only the budget.
func TestAdmissionFixedBudget(t *testing.T) {
	eng, err := NewAligner(EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	c := calibratedCoalescer(t, eng, CoalescerOptions{
		MaxBatchPairs: 4, MaxWait: time.Millisecond, MaxPending: 10,
		TargetDelay: time.Nanosecond, // must be ignored in fixed mode
	})

	c.pending = 8
	c.tenPending[anonymousTenant] = 8
	if reason, ok := c.admitLocked(context.Background(), anonymousTenant, classInteractive, 3); ok || reason != shedBudget {
		t.Fatalf("over budget: reason %v ok %v, want shedBudget", reason, ok)
	}
	// Under the budget everything is admitted, even though the calibrated
	// delay projection is far past the (ignored) 1ns target.
	if _, ok := c.admitLocked(context.Background(), anonymousTenant, classInteractive, 2); !ok {
		t.Fatal("within budget: not admitted")
	}
}

// TestAdmissionAdaptive covers the adaptive controller's decision table:
// the one-batch floor, the target-delay shed, the deadline-infeasible
// shed, and the uncalibrated fallback.
func TestAdmissionAdaptive(t *testing.T) {
	eng, err := NewAligner(EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	const target = 100 * time.Millisecond
	c := calibratedCoalescer(t, eng, CoalescerOptions{
		MaxBatchPairs: 4, MaxWait: time.Millisecond, TargetDelay: target,
	})
	rate := c.drainPairsPerSec()

	// One engine batch always fits, regardless of the projection.
	c.pending = 0
	delete(c.tenPending, anonymousTenant)
	if _, ok := c.admitLocked(context.Background(), anonymousTenant, classInteractive, 4); !ok {
		t.Fatal("one-batch floor: not admitted")
	}

	// Pending far past what drains within the target: shed by delay.
	c.pending = int(rate*target.Seconds()) + 100
	c.tenPending[anonymousTenant] = c.pending
	if reason, ok := c.admitLocked(context.Background(), anonymousTenant, classInteractive, 1); ok || reason != shedDelay {
		t.Fatalf("past target: reason %v ok %v, want shedDelay", reason, ok)
	}

	// Above the floor but projected well under the target: admitted —
	// unless the measured rate is so low the regime does not exist.
	under := int(rate * target.Seconds() / 2)
	if under > c.opt.MaxBatchPairs {
		c.pending = under
		c.tenPending[anonymousTenant] = under
		if reason, ok := c.admitLocked(context.Background(), anonymousTenant, classInteractive, 1); !ok {
			t.Fatalf("under target: reason %v, want admit", reason)
		}
		// Same queue, but the request's own deadline cannot survive the
		// projected wait: shed as infeasible even under the target.
		ctx, cancel := context.WithDeadline(context.Background(), time.Now())
		defer cancel()
		if reason, ok := c.admitLocked(ctx, anonymousTenant, classInteractive, 1); ok || reason != shedDeadline {
			t.Fatalf("infeasible deadline: reason %v ok %v, want shedDeadline", reason, ok)
		}
	}

	// ErrDeadlineInfeasible must still satisfy the ErrOverloaded checks
	// HTTP front ends map to 429.
	if !errors.Is(ErrDeadlineInfeasible, ErrOverloaded) {
		t.Fatal("ErrDeadlineInfeasible does not wrap ErrOverloaded")
	}

	// Uncalibrated controller (fresh coalescer, cells-per-pair unknown):
	// admit and let the first flushes measure.
	fresh := eng.newCoalescer(CoalescerOptions{MaxBatchPairs: 4, TargetDelay: time.Nanosecond})
	fresh.t.cellsPerPair.Set(0)
	fresh.pending = 1 << 20
	fresh.tenPending[anonymousTenant] = 1 << 20
	if reason, ok := fresh.admitLocked(context.Background(), anonymousTenant, classInteractive, 1); !ok {
		t.Fatalf("uncalibrated: reason %v, want admit", reason)
	}
}

// TestCoalescerAdaptiveVsFixedOverload is the synthetic-overload
// comparison: under the same burst, a generous fixed-cap coalescer queues
// everything (no sheds, every request served), while the adaptive
// controller with a tight delay target sheds the excess with
// ErrOverloaded instead of letting the queue grow.
func TestCoalescerAdaptiveVsFixedOverload(t *testing.T) {
	eng, err := NewAligner(EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	// Each request stays below MaxBatchPairs (engine-sized requests bypass
	// the queue and its admission control entirely) but above half of it,
	// so one pending request already blocks the one-batch floor for the
	// rest of the burst until its deadline flush — otherwise a fast
	// flusher can drain between admissions and nothing ever sheds.
	const clients = 16
	const pairsPerClient = 7
	burst := func(coal *Coalescer) (served, shed int) {
		var mu sync.Mutex
		var wg sync.WaitGroup
		start := make(chan struct{})
		for i := 0; i < clients; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				<-start
				_, _, err := coal.Align(context.Background(), makePairsSeed(pairsPerClient, int64(i)), cfgT)
				mu.Lock()
				defer mu.Unlock()
				switch {
				case err == nil:
					served++
				case errors.Is(err, ErrOverloaded):
					shed++
				default:
					t.Errorf("client %d: %v", i, err)
				}
			}(i)
		}
		close(start)
		wg.Wait()
		return served, shed
	}

	// Baseline: fixed cap far above the burst — admission never sheds.
	fixed := eng.NewCoalescer(CoalescerOptions{
		MaxBatchPairs: 8, MaxWait: time.Millisecond, MaxPending: 1 << 20,
	})
	served, shed := burst(fixed)
	fixed.Close()
	if served != clients || shed != 0 {
		t.Fatalf("fixed cap: served %d shed %d, want %d/0", served, shed, clients)
	}

	// Adaptive with a delay target no real queue can meet: once the first
	// warmup batches calibrate the drain rate, everything beyond the
	// one-batch floor is shed.
	adaptive := eng.NewCoalescer(CoalescerOptions{
		MaxBatchPairs: 8, MaxWait: time.Millisecond, TargetDelay: time.Nanosecond,
	})
	defer adaptive.Close()
	for i := 0; i < 2; i++ { // calibrate cells-per-pair via real flushes
		if _, _, err := adaptive.Align(context.Background(), makePairsSeed(4, int64(100+i)), cfgT); err != nil {
			t.Fatal(err)
		}
	}
	served, shed = burst(adaptive)
	if served+shed != clients || shed == 0 {
		t.Fatalf("adaptive: served %d shed %d, want sheds under overload", served, shed)
	}
	m := adaptive.Metrics()
	if m.ShedDelay == 0 || m.ShedDelay != m.Shed {
		t.Fatalf("metrics %+v: want every shed attributed to the delay target", m)
	}
	// The shed callers get a live drain estimate to retry against.
	if ra := adaptive.RetryAfter(); ra < adaptive.Options().MaxWait || ra > 30*time.Second {
		t.Fatalf("RetryAfter %v outside [MaxWait, 30s]", ra)
	}
}
