#!/usr/bin/env bash
# Documentation gate: every package must carry a package-level doc
# comment, and every exported symbol of the public root package must be
# documented. Run from the repo root; CI runs it alongside the unit
# tests. The checker itself is scripts/doclint.
set -euo pipefail
cd "$(dirname "$0")/.."
exec go run ./scripts/doclint .
