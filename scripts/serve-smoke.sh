#!/usr/bin/env bash
# Serve-level smoke test: boot logan-serve with coalescing on and an API
# key file, fire 50 concurrent small /align requests, and assert that
# every request succeeded and that the coalescer actually merged
# cross-request batches (non-zero mergedBatches in /statz). Then drive
# two authenticated tenants and assert the per-tenant metric series and
# the content-addressed result cache (repeated pair -> non-zero cache
# hits), and exercise the async /jobs overlap API end to end: submit a
# small FASTA, poll to completion, assert the PAF is non-empty and
# byte-identical to an offline cmd/bella run on the same file, and that
# DELETE yields 404. Finally exercise the reference-mapping tier: build
# a minimizer index through POST /map/index, map reads through POST /map
# and assert the PAF is byte-identical to an offline cmd/logan-map run
# on the same reference and reads. Run from the repo root; CI runs it
# after the unit tests.
set -euo pipefail

ADDR="127.0.0.1:18080"
WORK="$(mktemp -d)"
BIN="$WORK/logan-serve"
BELLA="$WORK/bella"
LOGAN_MAP="$WORK/logan-map"
trap 'kill "${SERVER_PID:-}" 2>/dev/null || true; rm -rf "$WORK"' EXIT

go build -o "$BIN" ./cmd/logan-serve
go build -o "$BELLA" ./cmd/bella
go build -o "$LOGAN_MAP" ./cmd/logan-map
# Two authenticated tenants alongside the anonymous default: alpha
# unlimited, bravo with a generous pairs/sec quota and double weight.
cat > "$WORK/keys.conf" <<'EOF'
# key    tenant  pairsPerSec burst weight
alpha-key alpha
bravo-key bravo  50000 100000 2
EOF

# A generous max-wait keeps the merge window open long enough that the
# 50-request burst reliably coalesces even on a slow CI runner.
"$BIN" -addr "$ADDR" -backend cpu -coalesce -max-wait 50ms \
  -api-keys "$WORK/keys.conf" &
SERVER_PID=$!

# Wait for liveness.
for _ in $(seq 1 100); do
  if curl -sf "http://$ADDR/healthz" >/dev/null 2>&1; then
    break
  fi
  if ! kill -0 "$SERVER_PID" 2>/dev/null; then
    echo "serve-smoke: server exited before becoming healthy" >&2
    exit 1
  fi
  sleep 0.1
done
curl -sf "http://$ADDR/healthz" >/dev/null

BODY='{"pairs":[{"query":"ACGTACGTACGTACGTACGTACGTACGTACGT","target":"ACGTACGTACGTACGTACGTACGTACGTACGT","seedQ":8,"seedT":8,"seedLen":8}]}'

# 50 concurrent clients; curl -f makes any non-2xx a non-zero exit.
CURL_PIDS=()
for _ in $(seq 1 50); do
  curl -sf -o /dev/null -X POST -H 'Content-Type: application/json' \
    -d "$BODY" "http://$ADDR/align" &
  CURL_PIDS+=($!)
done
FAILED=0
for pid in "${CURL_PIDS[@]}"; do
  wait "$pid" || FAILED=$((FAILED + 1))
done
if [ "$FAILED" -ne 0 ]; then
  echo "serve-smoke: $FAILED of 50 requests failed" >&2
  exit 1
fi

# Request-scoped configuration: the same server must honor per-request
# "x" and "scoring" fields with exact scores. The pair has 4 substitutions
# between two exact runs: with the default X the extension recovers (+4
# over the 8-match seed -> 12), with x=2 the trough prunes it (-> 8), and
# under affine gaps substitutions still beat gaps (-> 12). The BLOSUM62
# query scores identical 16-mers as 2*(4+9+6+5)*2 = 96.
CFG_PAIR='{"query":"AAAAAAAACCCCAAAAAAAA","target":"AAAAAAAAGGGGAAAAAAAA","seedQ":0,"seedT":0,"seedLen":8}'
assert_score() {
  local name="$1" body="$2" want="$3"
  local resp got
  resp=$(curl -sf -X POST -H 'Content-Type: application/json' -d "$body" "http://$ADDR/align") || {
    echo "serve-smoke: $name request failed" >&2; exit 1; }
  got=$(echo "$resp" | grep -o '"score":-\?[0-9]*' | head -1 | cut -d: -f2)
  if [ "$got" != "$want" ]; then
    echo "serve-smoke: $name score $got, want $want ($resp)" >&2
    exit 1
  fi
}
assert_score "default-x"    "{\"pairs\":[$CFG_PAIR]}" 12
assert_score "per-request-x" "{\"pairs\":[$CFG_PAIR],\"x\":2}" 8
assert_score "affine" "{\"pairs\":[$CFG_PAIR],\"scoring\":{\"mode\":\"affine\",\"match\":1,\"mismatch\":-1,\"gapOpen\":-2,\"gapExtend\":-1}}" 12
assert_score "blosum62" '{"pairs":[{"query":"ACGTACGTACGTACGT","target":"ACGTACGTACGTACGT","seedQ":0,"seedT":0,"seedLen":8}],"scoring":{"mode":"blosum62","gap":-6}}' 96

STATZ=$(curl -sf "http://$ADDR/statz")
echo "serve-smoke: statz: $STATZ"

merged=$(echo "$STATZ" | grep -o '"mergedBatches":[0-9]*' | cut -d: -f2)
requests=$(echo "$STATZ" | grep -o '"requests":[0-9]*' | head -1 | cut -d: -f2)
errors=$(echo "$STATZ" | grep -o '"errors":[0-9]*' | head -1 | cut -d: -f2)

if [ -z "$merged" ] || [ "$merged" -eq 0 ]; then
  echo "serve-smoke: no merged batches recorded (mergedBatches=${merged:-missing})" >&2
  exit 1
fi
if [ -z "$requests" ] || [ "$requests" -lt 50 ]; then
  echo "serve-smoke: expected >=50 requests, statz says ${requests:-missing}" >&2
  exit 1
fi
if [ -z "$errors" ] || [ "$errors" -ne 0 ]; then
  echo "serve-smoke: expected 0 errors, statz says ${errors:-missing}" >&2
  exit 1
fi

# --- /metrics ----------------------------------------------------------
# One scrape after the burst: valid content type, every pipeline stage
# histogram populated, and the merge counters moved.
METRICS_CT=$(curl -sf -o "$WORK/metrics.txt" -w '%{content_type}' "http://$ADDR/metrics")
case "$METRICS_CT" in
  "text/plain; version=0.0.4"*) ;;
  *)
    echo "serve-smoke: /metrics content type '$METRICS_CT'" >&2
    exit 1 ;;
esac
for stage in admit coalesce_wait partition kernel scatter; do
  count=$(grep -o "logan_stage_duration_seconds_count{stage=\"$stage\"} [0-9]*" \
    "$WORK/metrics.txt" | awk '{print $2}')
  if [ -z "$count" ] || [ "$count" -eq 0 ]; then
    echo "serve-smoke: stage histogram '$stage' empty (count=${count:-missing})" >&2
    exit 1
  fi
done
prom_nonzero() {
  local pat="$1"
  local total
  total=$(grep -E "^$pat" "$WORK/metrics.txt" | awk '{s += $2} END {printf "%d", s}')
  if [ -z "$total" ] || [ "$total" -eq 0 ]; then
    echo "serve-smoke: metric $pat missing or zero" >&2
    exit 1
  fi
}
prom_nonzero 'logan_coalescer_merged_batches_total'
prom_nonzero 'logan_coalescer_merged_pairs_total '
prom_nonzero 'logan_engine_batches_total '
prom_nonzero 'logan_backend_pairs_total\{backend="cpu"\}'
# The burst is linear-DNA with the default X, inside the vector kernel's
# envelope: the config-keyed selection must have routed it to the vector
# fast path, so the per-variant counters must have moved.
prom_nonzero 'logan_kernel_pairs_total\{variant="vector"\}'
prom_nonzero 'logan_kernel_cells_total\{variant="vector"\}'
prom_nonzero 'logan_http_requests_total '

# --- multi-tenant QoS + result cache -----------------------------------
# Authenticated traffic from two tenants, with alpha repeating the same
# pair: the repeat must be served from the content-addressed cache with
# the same bytes, and the per-tenant series must attribute the traffic.
ALPHA_FIRST=$(curl -sf -X POST -H 'Content-Type: application/json' \
  -H 'X-API-Key: alpha-key' -d "{\"pairs\":[$CFG_PAIR]}" "http://$ADDR/align")
ALPHA_REPEAT=$(curl -sf -X POST -H 'Content-Type: application/json' \
  -H 'X-API-Key: alpha-key' -d "{\"pairs\":[$CFG_PAIR]}" "http://$ADDR/align")
first_aln=$(echo "$ALPHA_FIRST" | grep -o '"alignments":\[[^]]*\]')
repeat_aln=$(echo "$ALPHA_REPEAT" | grep -o '"alignments":\[[^]]*\]')
if [ -z "$first_aln" ] || [ "$first_aln" != "$repeat_aln" ]; then
  echo "serve-smoke: cached repeat differs from first response:" >&2
  echo "  first:  $first_aln" >&2
  echo "  repeat: $repeat_aln" >&2
  exit 1
fi
curl -sf -o /dev/null -X POST -H 'Content-Type: application/json' \
  -H 'Authorization: Bearer bravo-key' -d "$BODY" "http://$ADDR/align"

# An unknown key must be refused, never downgraded to anonymous.
code=$(curl -s -o /dev/null -w '%{http_code}' -X POST -H 'Content-Type: application/json' \
  -H 'X-API-Key: wrong-key' -d "$BODY" "http://$ADDR/align")
if [ "$code" != "401" ]; then
  echo "serve-smoke: unknown API key returned $code, want 401" >&2
  exit 1
fi

# Re-scrape: per-tenant attribution and cache hit counters moved.
curl -sf -o "$WORK/metrics.txt" "http://$ADDR/metrics"
prom_nonzero 'logan_tenant_pairs_total\{tenant="alpha"\}'
prom_nonzero 'logan_tenant_pairs_total\{tenant="bravo"\}'
prom_nonzero 'logan_tenant_pairs_total\{tenant="anonymous"\}'
prom_nonzero 'logan_tenant_cache_hits_total\{tenant="alpha"\}'
prom_nonzero 'logan_cache_hits_total'
prom_nonzero 'logan_cache_entries'

# An invalid scheme must be rejected with 400, not aligned. (Probed after
# the statz error check: the rejection itself counts as a served error.)
code=$(curl -s -o /dev/null -w '%{http_code}' -X POST -H 'Content-Type: application/json' \
  -d '{"pairs":[],"scoring":{"mode":"bogus"}}' "http://$ADDR/align")
if [ "$code" != "400" ]; then
  echo "serve-smoke: invalid scheme returned $code, want 400" >&2
  exit 1
fi

# --- async /jobs overlap API -------------------------------------------
# Deterministic small data set shared by the offline and served runs.
"$BELLA" -preset tiny -seed 1 -dump-reads "$WORK/reads.fa" >/dev/null
"$BELLA" -fasta "$WORK/reads.fa" -cov 5 -errrate 0.15 -x 25 -minov 500 \
  -paf "$WORK/offline.paf" >/dev/null

JOB=$(curl -sf -X POST --data-binary "@$WORK/reads.fa" \
  "http://$ADDR/jobs?x=25&minOverlap=500&coverage=5&errorRate=0.15")
JOB_ID=$(echo "$JOB" | grep -o '"id":"[0-9a-f]*"' | cut -d'"' -f4)
if [ -z "$JOB_ID" ]; then
  echo "serve-smoke: POST /jobs returned no id: $JOB" >&2
  exit 1
fi

STATE=""
for _ in $(seq 1 600); do
  STATUS=$(curl -sf "http://$ADDR/jobs/$JOB_ID")
  STATE=$(echo "$STATUS" | grep -o '"state":"[a-z]*"' | cut -d'"' -f4)
  case "$STATE" in
    done) break ;;
    failed|canceled)
      echo "serve-smoke: job reached $STATE: $STATUS" >&2
      exit 1 ;;
  esac
  sleep 0.1
done
if [ "$STATE" != "done" ]; then
  echo "serve-smoke: job still '$STATE' after 60s" >&2
  exit 1
fi

curl -sf "http://$ADDR/jobs/$JOB_ID/paf" -o "$WORK/served.paf"
RECORDS=$(wc -l < "$WORK/served.paf")
if [ "$RECORDS" -lt 1 ]; then
  echo "serve-smoke: job PAF is empty" >&2
  exit 1
fi
if ! cmp -s "$WORK/offline.paf" "$WORK/served.paf"; then
  echo "serve-smoke: /jobs PAF differs from the offline cmd/bella run:" >&2
  diff "$WORK/offline.paf" "$WORK/served.paf" | head -5 >&2
  exit 1
fi

code=$(curl -s -o /dev/null -w '%{http_code}' -X DELETE "http://$ADDR/jobs/$JOB_ID")
if [ "$code" != "204" ]; then
  echo "serve-smoke: DELETE returned $code, want 204" >&2
  exit 1
fi
code=$(curl -s -o /dev/null -w '%{http_code}' "http://$ADDR/jobs/$JOB_ID")
if [ "$code" != "404" ]; then
  echo "serve-smoke: GET after DELETE returned $code, want 404" >&2
  exit 1
fi

# --- reference mapping: POST /map vs offline cmd/logan-map -------------
# Same simulated genome + reads for both paths: the served PAF must be
# byte-identical to the offline CLI (both are logan.Mapper.MapFasta).
"$BELLA" -preset tiny -seed 2 -dump-genome "$WORK/ref.fa" \
  -dump-reads "$WORK/mapreads.fa" >/dev/null

"$LOGAN_MAP" build-index -ref "$WORK/ref.fa" -o "$WORK/ref.lgi" 2>/dev/null
"$LOGAN_MAP" map -index "$WORK/ref.lgi" -x 100 "$WORK/mapreads.fa" \
  > "$WORK/offline-map.paf"

code=$(curl -s -o /dev/null -w '%{http_code}' -X POST \
  --data-binary "@$WORK/ref.fa" "http://$ADDR/map/index")
if [ "$code" != "202" ]; then
  echo "serve-smoke: POST /map/index returned $code, want 202" >&2
  exit 1
fi
MSTATE=""
for _ in $(seq 1 300); do
  MSTATE=$(curl -sf "http://$ADDR/map/index" | grep -o '"state":"[a-z]*"' | cut -d'"' -f4)
  case "$MSTATE" in
    ready) break ;;
    failed)
      echo "serve-smoke: server index build failed: $(curl -sf "http://$ADDR/map/index")" >&2
      exit 1 ;;
  esac
  sleep 0.1
done
if [ "$MSTATE" != "ready" ]; then
  echo "serve-smoke: mapping index still '$MSTATE' after 30s" >&2
  exit 1
fi

curl -sf -X POST --data-binary "@$WORK/mapreads.fa" \
  "http://$ADDR/map?x=100" -o "$WORK/served-map.paf"
MAP_RECORDS=$(wc -l < "$WORK/served-map.paf")
if [ "$MAP_RECORDS" -lt 1 ]; then
  echo "serve-smoke: POST /map returned an empty PAF" >&2
  exit 1
fi
if ! cmp -s "$WORK/offline-map.paf" "$WORK/served-map.paf"; then
  echo "serve-smoke: /map PAF differs from the offline cmd/logan-map run:" >&2
  diff "$WORK/offline-map.paf" "$WORK/served-map.paf" | head -5 >&2
  exit 1
fi

# The mapping telemetry must have moved.
curl -sf -o "$WORK/metrics.txt" "http://$ADDR/metrics"
prom_nonzero 'logan_map_reads_total'
prom_nonzero 'logan_map_anchors_total'
prom_nonzero 'logan_map_chains_total'
# The occupancy gauge is a fraction in (0,1), so the integer-summing
# prom_nonzero helper would truncate it to zero; compare as a float.
occ=$(grep -E '^logan_map_index_occupancy ' "$WORK/metrics.txt" | awk '{print $2}')
if [ -z "$occ" ] || ! awk -v o="$occ" 'BEGIN { exit !(o > 0) }'; then
  echo "serve-smoke: logan_map_index_occupancy missing or zero (got '${occ:-}')" >&2
  exit 1
fi

# Graceful shutdown must drain cleanly.
kill -TERM "$SERVER_PID"
wait "$SERVER_PID"
SERVER_PID=""
echo "serve-smoke: OK (50/50 requests, $merged merged batches, $RECORDS job PAF records, $MAP_RECORDS map PAF records)"
