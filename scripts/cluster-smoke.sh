#!/usr/bin/env bash
# Cluster-level smoke test: boot one logan-serve router (-cluster, durable
# queue, shared token) plus two logan-worker processes, and drive the
# scale-out failure path end to end. Asserts the readiness gate (503 with
# no workers, 200 once one registers), that the /metrics rollup carries
# worker="w1" and worker="w2" series, that an Idempotency-Key retry maps
# onto the original job, and — the core of it — that SIGKILLing the
# worker that holds a job's lease mid-run requeues the job exactly once
# onto the survivor, whose PAF is byte-identical to an offline cmd/bella
# run of the same data set. Run from the repo root; CI runs it after the
# serve smoke.
set -euo pipefail

ADDR="127.0.0.1:18090"
TOKEN="smoke-secret"
WORK="$(mktemp -d)"
trap 'kill "${SERVER_PID:-}" "${W1_PID:-}" "${W2_PID:-}" 2>/dev/null || true; rm -rf "$WORK"' EXIT

go build -o "$WORK/logan-serve" ./cmd/logan-serve
go build -o "$WORK/logan-worker" ./cmd/logan-worker
go build -o "$WORK/bella" ./cmd/bella

# Deterministic data set shared by the offline and clustered runs; x=500
# keeps the served job running long enough to kill its worker mid-lease.
"$WORK/bella" -preset tiny -seed 1 -dump-reads "$WORK/reads.fa" >/dev/null
"$WORK/bella" -fasta "$WORK/reads.fa" -cov 5 -errrate 0.15 -x 500 -minov 500 \
  -paf "$WORK/offline.paf" >/dev/null

# Short lease TTL so worker death is detected in hundreds of ms, not 10s.
"$WORK/logan-serve" -addr "$ADDR" -backend cpu \
  -cluster -cluster-queue "$WORK/queue.wal" -cluster-token "$TOKEN" \
  -lease-ttl 300ms &
SERVER_PID=$!

for _ in $(seq 1 100); do
  if curl -sf "http://$ADDR/healthz" >/dev/null 2>&1; then
    break
  fi
  if ! kill -0 "$SERVER_PID" 2>/dev/null; then
    echo "cluster-smoke: router exited before becoming healthy" >&2
    exit 1
  fi
  sleep 0.1
done
curl -sf "http://$ADDR/healthz" >/dev/null

# No workers yet: alive but not ready.
code=$(curl -s -o /dev/null -w '%{http_code}' "http://$ADDR/readyz")
if [ "$code" != "503" ]; then
  echo "cluster-smoke: /readyz with no workers returned $code, want 503" >&2
  exit 1
fi

"$WORK/logan-worker" -router "http://$ADDR" -name w1 -token "$TOKEN" &
W1_PID=$!
"$WORK/logan-worker" -router "http://$ADDR" -name w2 -token "$TOKEN" &
W2_PID=$!

# Readiness flips once the engine is warm and a worker has registered.
READY=""
for _ in $(seq 1 100); do
  code=$(curl -s -o /dev/null -w '%{http_code}' "http://$ADDR/readyz")
  if [ "$code" = "200" ]; then
    READY=yes
    break
  fi
  sleep 0.1
done
if [ -z "$READY" ]; then
  echo "cluster-smoke: /readyz never reached 200 with workers registered" >&2
  exit 1
fi

# The rollup shows both workers once their heartbeats carry snapshots.
ROLLUP=""
for _ in $(seq 1 100); do
  curl -sf -o "$WORK/metrics.txt" "http://$ADDR/metrics"
  if grep -q 'worker="w1"' "$WORK/metrics.txt" && grep -q 'worker="w2"' "$WORK/metrics.txt"; then
    ROLLUP=yes
    break
  fi
  sleep 0.1
done
if [ -z "$ROLLUP" ]; then
  echo "cluster-smoke: /metrics rollup never showed both workers" >&2
  exit 1
fi

# Submit with an Idempotency-Key; the immediate retry must map onto the
# original job instead of double-executing.
JOB=$(curl -sf -X POST -H 'Idempotency-Key: smoke-retry-1' \
  --data-binary "@$WORK/reads.fa" \
  "http://$ADDR/jobs?x=500&minOverlap=500&coverage=5&errorRate=0.15")
JOB_ID=$(echo "$JOB" | grep -o '"id":"[0-9a-f]*"' | cut -d'"' -f4)
if [ -z "$JOB_ID" ]; then
  echo "cluster-smoke: POST /jobs returned no id: $JOB" >&2
  exit 1
fi
RETRY_HEADERS=$(curl -sf -D - -o "$WORK/retry.json" -X POST \
  -H 'Idempotency-Key: smoke-retry-1' --data-binary "@$WORK/reads.fa" \
  "http://$ADDR/jobs?x=500&minOverlap=500&coverage=5&errorRate=0.15")
RETRY_ID=$(grep -o '"id":"[0-9a-f]*"' "$WORK/retry.json" | cut -d'"' -f4)
if [ "$RETRY_ID" != "$JOB_ID" ]; then
  echo "cluster-smoke: idempotent retry created job $RETRY_ID, want $JOB_ID" >&2
  exit 1
fi
if ! echo "$RETRY_HEADERS" | grep -qi '^X-Logan-Replayed: true'; then
  echo "cluster-smoke: retry response missing X-Logan-Replayed: true" >&2
  exit 1
fi

# Wait for a worker to take the lease, then SIGKILL that worker: no fail
# report, no release — the router must discover the death by lease expiry
# and requeue onto the survivor.
VICTIM=""
for _ in $(seq 1 500); do
  STATUS=$(curl -sf "http://$ADDR/jobs/$JOB_ID")
  STATE=$(echo "$STATUS" | grep -o '"state":"[a-z]*"' | cut -d'"' -f4)
  WORKER=$(echo "$STATUS" | grep -o '"worker":"[^"]*"' | cut -d'"' -f4)
  if [ "$STATE" = "running" ] && [ -n "$WORKER" ]; then
    VICTIM="$WORKER"
    break
  fi
  case "$STATE" in
    done|failed|canceled)
      echo "cluster-smoke: job reached $STATE before any worker could be killed: $STATUS" >&2
      exit 1 ;;
  esac
  sleep 0.02
done
if [ -z "$VICTIM" ]; then
  echo "cluster-smoke: job never started running" >&2
  exit 1
fi
case "$VICTIM" in
  w1) kill -9 "$W1_PID"; W1_PID=""; SURVIVOR="w2" ;;
  w2) kill -9 "$W2_PID"; W2_PID=""; SURVIVOR="w1" ;;
  *)
    echo "cluster-smoke: job leased by unknown worker '$VICTIM'" >&2
    exit 1 ;;
esac
echo "cluster-smoke: killed $VICTIM mid-lease, expecting $SURVIVOR to finish"

STATE=""
for _ in $(seq 1 600); do
  STATUS=$(curl -sf "http://$ADDR/jobs/$JOB_ID")
  STATE=$(echo "$STATUS" | grep -o '"state":"[a-z]*"' | cut -d'"' -f4)
  case "$STATE" in
    done) break ;;
    failed|canceled)
      echo "cluster-smoke: job reached $STATE after the kill: $STATUS" >&2
      exit 1 ;;
  esac
  sleep 0.1
done
if [ "$STATE" != "done" ]; then
  echo "cluster-smoke: job still '$STATE' 60s after the kill" >&2
  exit 1
fi

FINISHER=$(echo "$STATUS" | grep -o '"worker":"[^"]*"' | cut -d'"' -f4)
REQUEUES=$(echo "$STATUS" | grep -o '"requeues":[0-9]*' | cut -d: -f2)
if [ "$FINISHER" != "$SURVIVOR" ]; then
  echo "cluster-smoke: job finished by '$FINISHER', want survivor $SURVIVOR" >&2
  exit 1
fi
if [ "${REQUEUES:-0}" -ne 1 ]; then
  echo "cluster-smoke: job requeued ${REQUEUES:-0} times, want exactly 1" >&2
  exit 1
fi

# The surviving worker's output is byte-identical to the offline run.
curl -sf "http://$ADDR/jobs/$JOB_ID/paf" -o "$WORK/served.paf"
if ! cmp -s "$WORK/offline.paf" "$WORK/served.paf"; then
  echo "cluster-smoke: clustered PAF differs from the offline cmd/bella run:" >&2
  diff "$WORK/offline.paf" "$WORK/served.paf" | head -5 >&2
  exit 1
fi
RECORDS=$(wc -l < "$WORK/served.paf")

# The /statz cluster block recorded the expiry and the requeue.
STATZ=$(curl -sf "http://$ADDR/statz")
requeues=$(echo "$STATZ" | grep -o '"requeues":[0-9]*' | head -1 | cut -d: -f2)
expired=$(echo "$STATZ" | grep -o '"leaseExpired":[0-9]*' | cut -d: -f2)
if [ -z "$requeues" ] || [ "$requeues" -lt 1 ] || [ -z "$expired" ] || [ "$expired" -lt 1 ]; then
  echo "cluster-smoke: statz cluster block missing the requeue (requeues=${requeues:-missing}, leaseExpired=${expired:-missing}): $STATZ" >&2
  exit 1
fi

# Graceful teardown: worker first (releases cleanly), then the router.
[ -n "${W1_PID:-}" ] && { kill -TERM "$W1_PID"; wait "$W1_PID" || true; W1_PID=""; }
[ -n "${W2_PID:-}" ] && { kill -TERM "$W2_PID"; wait "$W2_PID" || true; W2_PID=""; }
kill -TERM "$SERVER_PID"
wait "$SERVER_PID"
SERVER_PID=""
echo "cluster-smoke: OK (killed $VICTIM, $SURVIVOR finished after 1 requeue, $RECORDS byte-identical PAF records)"
