#!/usr/bin/env bash
# Bench smoke + perf trajectory artifact: run one iteration of every
# benchmark (catching benchmarks that no longer compile or crash, without
# paying for a real measurement) and convert the output into a
# machine-readable BENCH_*.json so each CI run leaves a comparable perf
# record instead of scroll-away logs. Usage: scripts/bench-smoke.sh
# [out.json]; CI uploads the file as an artifact.
set -euo pipefail

OUT="${1:-BENCH_smoke.json}"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

go test -run='^$' -bench=. -benchtime=1x ./... | tee "$RAW"

awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
    -v commit="${GITHUB_SHA:-$(git rev-parse HEAD 2>/dev/null || echo unknown)}" '
BEGIN {
  printf("{\n  \"date\": \"%s\",\n  \"commit\": \"%s\",\n", date, commit)
  printf("  \"benchmarks\": [")
  n = 0
}
/^goos: /   { goos = $2 }
/^goarch: / { goarch = $2 }
/^pkg: /    { pkg = $2 }
/^cpu: /    { sub(/^cpu: /, ""); cpu = $0 }
/^Benchmark/ && NF >= 4 {
  # "BenchmarkX-8  1  123 ns/op  45 B/op  6 allocs/op ..." — every
  # value/unit pair after the iteration count becomes a JSON field.
  name = $1; iters = $2
  fields = ""
  for (i = 3; i + 1 <= NF; i += 2) {
    unit = $(i + 1)
    gsub(/[^A-Za-z0-9_\/.]/, "_", unit)
    fields = fields sprintf(", \"%s\": %s", unit, $i)
  }
  if (n++) printf(",")
  printf("\n    {\"pkg\": \"%s\", \"name\": \"%s\", \"iterations\": %s%s}",
         pkg, name, iters, fields)
}
END {
  if (n == 0) exit 1
  printf("\n  ],\n")
  printf("  \"goos\": \"%s\", \"goarch\": \"%s\", \"cpu\": \"%s\"\n}\n",
         goos, goarch, cpu)
}' "$RAW" > "$OUT" || {
  echo "bench-smoke: no benchmark lines found" >&2
  exit 1
}

# The artifact is only useful if it parses; fail the build otherwise.
python3 -c 'import json,sys; json.load(open(sys.argv[1]))' "$OUT" 2>/dev/null \
  || { echo "bench-smoke: $OUT is not valid JSON" >&2; exit 1; }
echo "bench-smoke: wrote $OUT ($(grep -c '"name"' "$OUT") benchmarks)"

# Kernel-comparison artifact: the scalar / vector / ksw2-striped sweep
# across band regimes plus the 10k-pair forced-kernel batch run, with the
# vector-over-scalar speedup computed from the batch cells/ns. The
# speedup is the acceptance number for the vector kernel (>= 1.3x).
KOUT="${2:-BENCH_kernel.json}"
KRAW="$(mktemp)"
trap 'rm -f "$RAW" "$KRAW"' EXIT

go test -run='^$' -bench='^(BenchmarkKernel|BenchmarkPoolKernel10k)$' -benchtime=1x \
  ./internal/xdrop/ | tee "$KRAW"

awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
    -v commit="${GITHUB_SHA:-$(git rev-parse HEAD 2>/dev/null || echo unknown)}" '
BEGIN {
  printf("{\n  \"date\": \"%s\",\n  \"commit\": \"%s\",\n", date, commit)
  printf("  \"benchmarks\": [")
  n = 0
}
/^Benchmark/ && NF >= 4 {
  name = $1; iters = $2
  fields = ""
  for (i = 3; i + 1 <= NF; i += 2) {
    unit = $(i + 1)
    if (unit == "cells/ns") {
      if (name ~ /PoolKernel10k\/scalar/) scalar = $i
      if (name ~ /PoolKernel10k\/vector/) vector = $i
    }
    gsub(/[^A-Za-z0-9_\/.]/, "_", unit)
    fields = fields sprintf(", \"%s\": %s", unit, $i)
  }
  if (n++) printf(",")
  printf("\n    {\"name\": \"%s\", \"iterations\": %s%s}", name, iters, fields)
}
END {
  if (n == 0) exit 1
  printf("\n  ]")
  if (scalar > 0 && vector > 0)
    printf(",\n  \"vector_speedup_10k\": %.3f", vector / scalar)
  printf("\n}\n")
}' "$KRAW" > "$KOUT" || {
  echo "bench-smoke: no kernel benchmark lines found" >&2
  exit 1
}

python3 -c 'import json,sys; json.load(open(sys.argv[1]))' "$KOUT" 2>/dev/null \
  || { echo "bench-smoke: $KOUT is not valid JSON" >&2; exit 1; }
echo "bench-smoke: wrote $KOUT (speedup $(python3 -c 'import json,sys; print(json.load(open(sys.argv[1])).get("vector_speedup_10k", "n/a"))' "$KOUT"))"

# Result-cache artifact: serving a warm repeated request from the
# content-addressed cache vs recomputing the identical pairs on the
# engine. cache_speedup = recompute ns/op over hit ns/op — the headline
# number for the serve-path cache (a hit skips queueing, scheduling and
# the whole DP).
COUT="${3:-BENCH_cache.json}"
CRAW="$(mktemp)"
trap 'rm -f "$RAW" "$KRAW" "$CRAW"' EXIT

go test -run='^$' -bench='^BenchmarkCacheServe$' -benchtime=20x . | tee "$CRAW"

awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
    -v commit="${GITHUB_SHA:-$(git rev-parse HEAD 2>/dev/null || echo unknown)}" '
BEGIN {
  printf("{\n  \"date\": \"%s\",\n  \"commit\": \"%s\",\n", date, commit)
  printf("  \"benchmarks\": [")
  n = 0
}
/^Benchmark/ && NF >= 4 {
  name = $1; iters = $2
  fields = ""
  for (i = 3; i + 1 <= NF; i += 2) {
    unit = $(i + 1)
    if (unit == "ns/op") {
      if (name ~ /CacheServe\/hit/) hit = $i
      if (name ~ /CacheServe\/recompute/) recompute = $i
    }
    gsub(/[^A-Za-z0-9_\/.]/, "_", unit)
    fields = fields sprintf(", \"%s\": %s", unit, $i)
  }
  if (n++) printf(",")
  printf("\n    {\"name\": \"%s\", \"iterations\": %s%s}", name, iters, fields)
}
END {
  if (n == 0) exit 1
  printf("\n  ]")
  if (hit > 0 && recompute > 0)
    printf(",\n  \"cache_speedup\": %.3f", recompute / hit)
  printf("\n}\n")
}' "$CRAW" > "$COUT" || {
  echo "bench-smoke: no cache benchmark lines found" >&2
  exit 1
}

python3 -c 'import json,sys; json.load(open(sys.argv[1]))' "$COUT" 2>/dev/null \
  || { echo "bench-smoke: $COUT is not valid JSON" >&2; exit 1; }
echo "bench-smoke: wrote $COUT (cache speedup $(python3 -c 'import json,sys; print(json.load(open(sys.argv[1])).get("cache_speedup", "n/a"))' "$COUT"))"

# Mapping artifact: the minimize -> chain -> extend pipeline placing a
# simulated read set against a 1 Mbp synthetic reference. reads/sec is
# the mapping tier's throughput headline; anchors/read guards the
# seeding density (a collapse there means the minimizer index regressed
# even if throughput held up).
MOUT="${4:-BENCH_map.json}"
MRAW="$(mktemp)"
trap 'rm -f "$RAW" "$KRAW" "$CRAW" "$MRAW"' EXIT

go test -run='^$' -bench='^BenchmarkMap$' -benchtime=1x . | tee "$MRAW"

awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
    -v commit="${GITHUB_SHA:-$(git rev-parse HEAD 2>/dev/null || echo unknown)}" '
BEGIN {
  printf("{\n  \"date\": \"%s\",\n  \"commit\": \"%s\",\n", date, commit)
  printf("  \"benchmarks\": [")
  n = 0
}
/^Benchmark/ && NF >= 4 {
  name = $1; iters = $2
  fields = ""
  for (i = 3; i + 1 <= NF; i += 2) {
    unit = $(i + 1)
    if (unit == "reads/sec")     rps = $i
    if (unit == "anchors/read")  apr = $i
    gsub(/[^A-Za-z0-9_\/.]/, "_", unit)
    fields = fields sprintf(", \"%s\": %s", unit, $i)
  }
  if (n++) printf(",")
  printf("\n    {\"name\": \"%s\", \"iterations\": %s%s}", name, iters, fields)
}
END {
  if (n == 0) exit 1
  printf("\n  ]")
  if (rps > 0) printf(",\n  \"reads_per_sec\": %s", rps)
  if (apr > 0) printf(",\n  \"anchors_per_read\": %s", apr)
  printf("\n}\n")
}' "$MRAW" > "$MOUT" || {
  echo "bench-smoke: no mapping benchmark lines found" >&2
  exit 1
}

python3 -c 'import json,sys; json.load(open(sys.argv[1]))' "$MOUT" 2>/dev/null \
  || { echo "bench-smoke: $MOUT is not valid JSON" >&2; exit 1; }
echo "bench-smoke: wrote $MOUT (reads/sec $(python3 -c 'import json,sys; print(json.load(open(sys.argv[1])).get("reads_per_sec", "n/a"))' "$MOUT"))"
