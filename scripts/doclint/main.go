// Command doclint enforces the repository's documentation contract:
//
//  1. Every package — the root API, every internal package, every command
//     and example — carries a package-level doc comment.
//  2. Every exported symbol of the root package (the public v2 API:
//     types, functions, methods, constants, variables) carries a doc
//     comment.
//
// It exits non-zero listing each violation as file:line, so CI can gate
// on it (scripts/doc-lint.sh).
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// violation is one missing doc comment.
type violation struct {
	pos token.Position
	msg string
}

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	dirs, err := goDirs(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "doclint: %v\n", err)
		os.Exit(2)
	}
	var violations []violation
	for _, dir := range dirs {
		vs, err := lintDir(root, dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doclint: %s: %v\n", dir, err)
			os.Exit(2)
		}
		violations = append(violations, vs...)
	}
	sort.Slice(violations, func(a, b int) bool {
		if violations[a].pos.Filename != violations[b].pos.Filename {
			return violations[a].pos.Filename < violations[b].pos.Filename
		}
		return violations[a].pos.Line < violations[b].pos.Line
	})
	for _, v := range violations {
		fmt.Printf("%s:%d: %s\n", v.pos.Filename, v.pos.Line, v.msg)
	}
	if len(violations) > 0 {
		fmt.Fprintf(os.Stderr, "doclint: %d undocumented declarations\n", len(violations))
		os.Exit(1)
	}
}

// goDirs lists every directory under root holding non-test Go files.
func goDirs(root string) ([]string, error) {
	seen := map[string]bool{}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == ".git" || name == "testdata" || (strings.HasPrefix(name, ".") && path != root) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			seen[filepath.Dir(path)] = true
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	dirs := make([]string, 0, len(seen))
	for d := range seen {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)
	return dirs, nil
}

// lintDir checks one package directory. Exported-symbol coverage is
// enforced only for the public root package; package docs everywhere.
func lintDir(root, dir string) ([]violation, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	isRoot := filepath.Clean(dir) == filepath.Clean(root)
	var out []violation
	for _, pkg := range pkgs {
		// Rule 1: a package doc comment on some file of the package.
		documented := false
		var first *ast.File
		var firstName string
		for name, f := range pkg.Files {
			if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
				documented = true
			}
			if first == nil || name < firstName {
				first, firstName = f, name
			}
		}
		if !documented && first != nil {
			out = append(out, violation{
				pos: fset.Position(first.Package),
				msg: fmt.Sprintf("package %s has no package-level doc comment (add one, e.g. in a doc.go)", pkg.Name),
			})
		}
		if !isRoot {
			continue
		}
		// Rule 2: exported symbols of the root package.
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				out = append(out, lintDecl(fset, decl)...)
			}
		}
	}
	return out, nil
}

// lintDecl flags undocumented exported top-level declarations.
func lintDecl(fset *token.FileSet, decl ast.Decl) []violation {
	var out []violation
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() || exportedRecv(d) == false {
			return nil
		}
		if d.Doc == nil || strings.TrimSpace(d.Doc.Text()) == "" {
			kind := "function"
			if d.Recv != nil {
				kind = "method"
			}
			out = append(out, violation{
				pos: fset.Position(d.Pos()),
				msg: fmt.Sprintf("exported %s %s is undocumented", kind, d.Name.Name),
			})
		}
	case *ast.GenDecl:
		groupDoc := d.Doc != nil && strings.TrimSpace(d.Doc.Text()) != ""
		for _, spec := range d.Specs {
			switch sp := spec.(type) {
			case *ast.TypeSpec:
				if !sp.Name.IsExported() {
					continue
				}
				if !groupDoc && (sp.Doc == nil || strings.TrimSpace(sp.Doc.Text()) == "") {
					out = append(out, violation{
						pos: fset.Position(sp.Pos()),
						msg: fmt.Sprintf("exported type %s is undocumented", sp.Name.Name),
					})
				}
			case *ast.ValueSpec:
				specDoc := sp.Doc != nil && strings.TrimSpace(sp.Doc.Text()) != ""
				for _, name := range sp.Names {
					if !name.IsExported() {
						continue
					}
					if !groupDoc && !specDoc {
						out = append(out, violation{
							pos: fset.Position(name.Pos()),
							msg: fmt.Sprintf("exported %s %s is undocumented (document it or its declaration group)", kindOf(d.Tok), name.Name),
						})
					}
				}
			}
		}
	}
	return out
}

// exportedRecv reports whether a method's receiver type is exported (or
// the declaration is a plain function). Methods on unexported types are
// not part of the public surface.
func exportedRecv(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return true
		}
	}
}

// kindOf names a const/var token for messages.
func kindOf(tok token.Token) string {
	if tok == token.CONST {
		return "constant"
	}
	return "variable"
}
