package logan

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"logan/internal/seq"
	"logan/internal/xdrop"
)

// benchPairs builds the 10k-pair workload of the engine acceptance
// benchmark: read-scale fragments with a planted seed, BELLA-style.
func benchPairs(n int) []Pair {
	rng := rand.New(rand.NewSource(11))
	raw := seq.RandPairSet(rng, seq.PairSetOptions{
		N: n, MinLen: 200, MaxLen: 600, ErrorRate: 0.15, SeedLen: 17,
	})
	out := make([]Pair, n)
	for i, p := range raw {
		out[i] = Pair{Query: []byte(p.Query), Target: []byte(p.Target),
			SeedQ: p.SeedQPos, SeedT: p.SeedTPos, SeedLen: p.SeedLen}
	}
	return out
}

// BenchmarkAlignerReused10k is the engine path: one Aligner serving
// repeated 10k-pair batches with recycled result storage. Compare against
// BenchmarkSeedPerCall10k.
func BenchmarkAlignerReused10k(b *testing.B) {
	pairs := benchPairs(10000)
	cfg := DefaultConfig(100)
	eng, err := NewAligner(EngineOptions{})
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()
	var dst []Alignment
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst, _, err = eng.AlignInto(context.Background(), dst, pairs, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSeedPerCall10k replicates the pre-engine per-call path on the
// same workload: every batch re-validates and double-copies the sequences
// ([]byte -> string -> Seq) and spins up a fresh worker team, exactly as
// the original logan.Align did.
func BenchmarkSeedPerCall10k(b *testing.B) {
	pairs := benchPairs(10000)
	opt := DefaultOptions(100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		in := make([]seq.Pair, len(pairs))
		for i, p := range pairs {
			q, err := seq.New(string(p.Query))
			if err != nil {
				b.Fatal(err)
			}
			t, err := seq.New(string(p.Target))
			if err != nil {
				b.Fatal(err)
			}
			in[i] = seq.Pair{Query: q, Target: t,
				SeedQPos: p.SeedQ, SeedTPos: p.SeedT, SeedLen: p.SeedLen, ID: i}
		}
		results, _, err := xdrop.ExtendBatch(in, opt.scoring(), opt.X, opt.Threads)
		if err != nil {
			b.Fatal(err)
		}
		out := make([]Alignment, len(results))
		var st Stats
		for i, r := range results {
			out[i] = toAlignment(r)
			st.Cells += r.Cells()
		}
		st.WallTime = time.Since(start)
		_ = fmt.Sprint(st.WallTime > 0)
	}
}

// BenchmarkAlignerStream10k drives the same workload through the
// streaming API in 10 batches of 1k with 4 in flight.
func BenchmarkAlignerStream10k(b *testing.B) {
	pairs := benchPairs(10000)
	cfg := DefaultConfig(100)
	eng, err := NewAligner(EngineOptions{})
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := eng.NewStream(4)
		go func() {
			for off := 0; off < len(pairs); off += 1000 {
				s.Submit(context.Background(), Batch{ID: int64(off), Pairs: pairs[off : off+1000], Config: cfg})
			}
			s.Close()
		}()
		for r := range s.Results() {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
		}
	}
}

// BenchmarkBackends2k compares the execution backends on one 2k-pair
// batch through the same engine path: the CPU pool, single- and dual-GPU
// simulated devices, and the hybrid CPU+GPU scheduler.
func BenchmarkBackends2k(b *testing.B) {
	pairs := benchPairs(2000)
	for _, tc := range []struct {
		name    string
		backend Backend
		gpus    int
	}{
		{"cpu", CPU, 0},
		{"gpu1", GPU, 1},
		{"gpu2", GPU, 2},
		{"hybrid2", Hybrid, 2},
	} {
		b.Run(tc.name, func(b *testing.B) {
			cfg := DefaultConfig(100)
			eng, err := NewAligner(EngineOptions{Backend: tc.backend, GPUs: tc.gpus})
			if err != nil {
				b.Fatal(err)
			}
			defer eng.Close()
			var dst []Alignment
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dst, _, err = eng.AlignInto(context.Background(), dst, pairs, cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
