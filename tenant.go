package logan

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// ErrQuotaExceeded reports a request rejected because its tenant's
// pairs/sec token bucket is exhausted (TenantOptions.PairsPerSec). It
// wraps ErrOverloaded, so HTTP front ends that already map
// ErrOverloaded to 429 + Retry-After handle it with no change; unlike
// the queue-level sheds it is attributable to the requesting tenant
// alone, never to load other tenants created.
var ErrQuotaExceeded = fmt.Errorf("%w: tenant pairs/sec quota exhausted", ErrOverloaded)

// TenantOptions configures a Tenant. The zero value is a valid
// unlimited anonymous-style tenant.
type TenantOptions struct {
	// Name identifies the tenant in metrics ("tenant" label) and /statz.
	// Empty selects "tenant". Keep it label-safe: letters, digits, and
	// [._-] (the serve layer's -api-keys parser enforces this).
	Name string

	// PairsPerSec is the tenant's sustained compute quota in alignment
	// pairs per second, enforced as a token bucket at admission. Cache
	// hits are free — the quota meters pairs that reach the engine.
	// Zero or negative means unlimited.
	PairsPerSec float64

	// Burst is the bucket capacity in pairs: how far above the
	// sustained rate a short burst may go. Zero selects two seconds of
	// PairsPerSec. Ignored when PairsPerSec is unlimited.
	Burst int

	// Weight is the tenant's share weight for the coalescer's
	// per-tenant pending budget: when tenants contend, each may hold up
	// to budget*weight/total-active-weight queued pairs. Zero or
	// negative selects 1.
	Weight int
}

// Tenant is one accounted traffic source of the serve path: the unit of
// quota enforcement (pairs/sec token bucket), fair-share scheduling
// (per-tenant coalescer lanes and pending shares) and attribution
// (per-tenant served/shed/cache metrics). Construct with NewTenant,
// attach to a request with WithTenant; requests without a tenant are
// accounted to a shared anonymous tenant. A Tenant is safe for
// concurrent use and is compared by identity — reuse one value per API
// key, not one per request.
type Tenant struct {
	name   string
	weight int

	// Token bucket state; rate <= 0 disables the quota.
	mu     sync.Mutex
	rate   float64
	burst  float64
	tokens float64
	last   time.Time
}

// NewTenant builds a tenant from opt (zero fields select the defaults
// documented on TenantOptions).
func NewTenant(opt TenantOptions) *Tenant {
	if opt.Name == "" {
		opt.Name = "tenant"
	}
	if opt.Weight <= 0 {
		opt.Weight = 1
	}
	t := &Tenant{name: opt.Name, weight: opt.Weight}
	if opt.PairsPerSec > 0 {
		t.rate = opt.PairsPerSec
		t.burst = float64(opt.Burst)
		if opt.Burst <= 0 {
			t.burst = 2 * opt.PairsPerSec
		}
		t.tokens = t.burst
		t.last = time.Now()
	}
	return t
}

// Name returns the tenant's metrics identity.
func (t *Tenant) Name() string { return t.name }

// Weight returns the tenant's fair-share weight (at least 1).
func (t *Tenant) Weight() int { return t.weight }

// anonymousTenant absorbs requests whose context carries no tenant:
// unlimited quota, weight 1. A package-level singleton so every
// unattributed request lands in the same lanes and series.
var anonymousTenant = NewTenant(TenantOptions{Name: "anonymous"})

// AnonymousTenant returns the shared tenant that absorbs requests
// whose context carries no tenant (unlimited quota, weight 1).
func AnonymousTenant() *Tenant { return anonymousTenant }

// takePairs consumes n pairs from the tenant's token bucket. It reports
// whether the quota admitted them, and — when it did not — roughly how
// long until n tokens will have refilled (a Retry-After hint).
func (t *Tenant) takePairs(n int) (bool, time.Duration) {
	if t == nil || t.rate <= 0 {
		return true, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	now := time.Now()
	t.tokens = min(t.burst, t.tokens+t.rate*now.Sub(t.last).Seconds())
	t.last = now
	if t.tokens >= float64(n) {
		t.tokens -= float64(n)
		return true, 0
	}
	return false, time.Duration((float64(n) - t.tokens) / t.rate * float64(time.Second))
}

// tenantKeyT is the context key type for WithTenant.
type tenantKeyT struct{}

// WithTenant attaches a tenant to the context. The serve layer calls it
// after API-key authentication; every layer downstream (coalescer
// admission, lanes, quota, engine) reads the same identity back with
// TenantFrom.
func WithTenant(ctx context.Context, t *Tenant) context.Context {
	return context.WithValue(ctx, tenantKeyT{}, t)
}

// TenantFrom extracts the context's tenant, or nil when none is
// attached (callers treat nil as the anonymous tenant).
func TenantFrom(ctx context.Context) *Tenant {
	t, _ := ctx.Value(tenantKeyT{}).(*Tenant)
	return t
}

// priorityClass separates the coalescer's two service classes:
// interactive requests (the /align path; latency-bounded by MaxWait)
// drain ahead of bulk work (the /jobs overlap extension chunks, which
// tolerate BulkMaxWait in exchange for fuller batches).
type priorityClass uint8

const (
	classInteractive priorityClass = iota
	classBulk
	numClasses
)

// String names the class for metrics labels.
func (p priorityClass) String() string {
	if p == classBulk {
		return "bulk"
	}
	return "interactive"
}

// classKeyT is the context key type for withPriority.
type classKeyT struct{}

// withPriority tags the context's coalescer service class; the
// overlap subsystem marks its extension chunks bulk, everything else
// defaults to interactive.
func withPriority(ctx context.Context, c priorityClass) context.Context {
	return context.WithValue(ctx, classKeyT{}, c)
}

// priorityFrom reads the context's service class (interactive default).
func priorityFrom(ctx context.Context) priorityClass {
	c, _ := ctx.Value(classKeyT{}).(priorityClass)
	return c
}
