package logan

import (
	"context"
	"errors"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"logan/internal/seq"
)

// TestTenantTokenBucket covers the pairs/sec quota mechanics: burst
// capacity, exhaustion with a positive retry hint, refill over time, and
// the unlimited defaults (zero options, nil tenant).
func TestTenantTokenBucket(t *testing.T) {
	ten := NewTenant(TenantOptions{Name: "t", PairsPerSec: 1000, Burst: 10})
	if ok, _ := ten.takePairs(10); !ok {
		t.Fatal("burst capacity not admitted")
	}
	ok, retry := ten.takePairs(5)
	if ok || retry <= 0 {
		t.Fatalf("exhausted bucket: ok %v retry %v, want shed with positive hint", ok, retry)
	}
	// 1000 pairs/sec refills 5 tokens in 5ms; poll with slack for CI.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if ok, _ := ten.takePairs(5); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("bucket never refilled")
		}
		time.Sleep(time.Millisecond)
	}

	unlimited := NewTenant(TenantOptions{Name: "u"})
	if ok, _ := unlimited.takePairs(1 << 30); !ok {
		t.Fatal("unlimited tenant metered")
	}
	var nilTen *Tenant
	if ok, _ := nilTen.takePairs(1); !ok {
		t.Fatal("nil tenant metered")
	}
}

// TestTenantDefaults pins NewTenant's zero-field behavior and the
// context plumbing round trip.
func TestTenantDefaults(t *testing.T) {
	ten := NewTenant(TenantOptions{})
	if ten.Name() != "tenant" || ten.Weight() != 1 {
		t.Fatalf("defaults: name %q weight %d", ten.Name(), ten.Weight())
	}
	if AnonymousTenant().Name() != "anonymous" {
		t.Fatalf("anonymous tenant named %q", AnonymousTenant().Name())
	}
	if TenantFrom(context.Background()) != nil {
		t.Fatal("empty context carries a tenant")
	}
	ctx := WithTenant(context.Background(), ten)
	if TenantFrom(ctx) != ten {
		t.Fatal("WithTenant/TenantFrom round trip failed")
	}
	if priorityFrom(ctx) != classInteractive {
		t.Fatal("default priority class is not interactive")
	}
	if priorityFrom(withPriority(ctx, classBulk)) != classBulk {
		t.Fatal("withPriority/priorityFrom round trip failed")
	}
	if !errors.Is(ErrQuotaExceeded, ErrOverloaded) {
		t.Fatal("ErrQuotaExceeded does not wrap ErrOverloaded")
	}
}

// TestTenantQuotaShedsCoalesced: a rate-limited tenant exhausting its
// bucket is shed with ErrQuotaExceeded on the coalesced path, attributed
// to its own shed counter, while an unlimited tenant on the same
// coalescer keeps being served.
func TestTenantQuotaShedsCoalesced(t *testing.T) {
	eng, err := NewAligner(EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	coal := eng.NewCoalescer(CoalescerOptions{MaxBatchPairs: 64, MaxWait: time.Millisecond})
	defer coal.Close()

	// Rate low enough that the bucket cannot visibly refill mid-test.
	limited := NewTenant(TenantOptions{Name: "limited", PairsPerSec: 0.001, Burst: 4})
	free := NewTenant(TenantOptions{Name: "free"})
	lctx := WithTenant(ctxb, limited)
	fctx := WithTenant(ctxb, free)

	if _, _, err := coal.Align(lctx, makePairsSeed(4, 1), cfgT); err != nil {
		t.Fatalf("within burst: %v", err)
	}
	_, _, err = coal.Align(lctx, makePairsSeed(2, 2), cfgT)
	if !errors.Is(err, ErrQuotaExceeded) || !errors.Is(err, ErrOverloaded) {
		t.Fatalf("past burst: err %v, want ErrQuotaExceeded", err)
	}
	if _, _, err := coal.Align(fctx, makePairsSeed(2, 3), cfgT); err != nil {
		t.Fatalf("unlimited tenant collateral shed: %v", err)
	}

	m := coal.Metrics()
	if m.ShedQuota != 1 || m.Shed != 1 {
		t.Fatalf("metrics %+v: want exactly one quota shed", m)
	}
	if v := coal.tenantTele(limited).shed.Value(); v != 1 {
		t.Fatalf("limited tenant shed counter %v, want 1", v)
	}
	if v := coal.tenantTele(free).shed.Value(); v != 0 {
		t.Fatalf("free tenant shed counter %v, want 0", v)
	}
}

// TestTenantQuotaShedsDirect: the engine meters direct (non-coalesced)
// submissions against the context tenant's bucket too.
func TestTenantQuotaShedsDirect(t *testing.T) {
	eng, err := NewAligner(EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	ten := NewTenant(TenantOptions{Name: "d", PairsPerSec: 0.001, Burst: 4})
	ctx := WithTenant(ctxb, ten)
	if _, _, err := eng.Align(ctx, makePairsSeed(4, 4), cfgT); err != nil {
		t.Fatalf("within burst: %v", err)
	}
	if _, _, err := eng.Align(ctx, makePairsSeed(1, 5), cfgT); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("past burst: err %v, want ErrQuotaExceeded", err)
	}
	// Tenant-less contexts stay unmetered.
	if _, _, err := eng.Align(ctxb, makePairsSeed(1, 6), cfgT); err != nil {
		t.Fatalf("anonymous direct align: %v", err)
	}
}

// TestCoalescerPriorityClasses: with both classes size-ready, the DRR
// scheduler must drain every interactive lane before any bulk lane, and
// a bulk lane's deadline is the longer BulkMaxWait window.
func TestCoalescerPriorityClasses(t *testing.T) {
	eng, err := NewAligner(EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	c := eng.newCoalescer(CoalescerOptions{MaxBatchPairs: 4, MaxWait: time.Hour})
	if c.opt.BulkMaxWait != 4*time.Hour {
		t.Fatalf("BulkMaxWait default %v, want 4*MaxWait", c.opt.BulkMaxWait)
	}
	enq := func(class priorityClass, cfg Config, npairs int) {
		w := &coalesceWaiter{
			in: make([]seq.Pair, npairs), npairs: npairs, enq: time.Now(),
			tt: c.tenantTele(anonymousTenant), ch: make(chan coalesceResult, 1),
		}
		c.mu.Lock()
		c.enqueueLocked(laneKey{ten: anonymousTenant, class: class, cfg: cfg.key()}, cfg, w)
		c.mu.Unlock()
	}
	bulkCfg, interCfg := DefaultConfig(60), DefaultConfig(70)
	enq(classBulk, bulkCfg, 4) // size-ready bulk lane, enqueued FIRST
	enq(classInteractive, interCfg, 4)

	cfg, _, _, reason, ok := c.take(false)
	if !ok || cfg.key() != interCfg.key() || reason != flushSize {
		t.Fatalf("first take: X=%d reason %v ok %v; want the interactive lane despite bulk arriving first",
			cfg.X, reason, ok)
	}
	cfg, _, _, reason, ok = c.take(false)
	if !ok || cfg.key() != bulkCfg.key() || reason != flushSize {
		t.Fatalf("second take: X=%d reason %v ok %v; want the bulk lane", cfg.X, reason, ok)
	}

	// An undersized bulk waiter's flush deadline is BulkMaxWait out, so
	// it must not be takeable before an interactive MaxWait would fire.
	enq(classBulk, bulkCfg, 1)
	if _, _, _, _, ok := c.take(false); ok {
		t.Fatal("undersized bulk lane flushed before its BulkMaxWait window")
	}
	if d := c.nextDeadline(); d < 2*time.Hour {
		t.Fatalf("bulk lane deadline %v out, want ~BulkMaxWait (4h)", d)
	}
}

// TestCoalescerFairShare is the fairness regression test of the
// multi-tenant scheduler (run under -race in CI): a tenant flooding the
// coalescer at ~10x its fair rate must neither shed nor delay a
// well-behaved tenant — the victim's requests all succeed and its p99
// wall latency stays within its deadline-flush bound plus generous CI
// slack, while every budget shed is attributed to the flooder.
func TestCoalescerFairShare(t *testing.T) {
	eng, err := NewAligner(EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	const maxWait = 30 * time.Millisecond
	coal := eng.NewCoalescer(CoalescerOptions{
		MaxBatchPairs: 64, MaxWait: maxWait,
		// Fixed budget keeps the test deterministic: the flooder's share
		// is MaxPending/2 once the victim is active, and its sustained
		// burst of 8-pair requests overruns that share immediately.
		MaxPending: 32,
	})
	defer coal.Close()

	flooder := NewTenant(TenantOptions{Name: "flooder"})
	victim := NewTenant(TenantOptions{Name: "victim"})
	fctx := WithTenant(ctxb, flooder)
	vctx := WithTenant(ctxb, victim)

	stop := make(chan struct{})
	var floodShed, floodServed atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for r := 0; ; r++ {
				select {
				case <-stop:
					return
				default:
				}
				_, _, err := coal.Align(fctx, makePairsSeed(8, int64(1000+i*100+r%7)), cfgT)
				switch {
				case err == nil:
					floodServed.Add(1)
				case errors.Is(err, ErrOverloaded):
					floodShed.Add(1)
				default:
					t.Errorf("flooder: %v", err)
					return
				}
			}
		}(i)
	}

	// The victim issues sequential single-pair requests while the flood
	// runs; each rides its own deadline flush at worst.
	const rounds = 20
	lat := make([]time.Duration, 0, rounds)
	for r := 0; r < rounds; r++ {
		start := time.Now()
		if _, _, err := coal.Align(vctx, makePairsSeed(1, int64(2000+r)), cfgT); err != nil {
			t.Errorf("victim round %d: %v (the flooder's load must never shed the victim)", r, err)
		}
		lat = append(lat, time.Since(start))
	}
	close(stop)
	wg.Wait()

	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	p99 := lat[len(lat)*99/100]
	// ε covers one engine batch plus CI scheduler skew: the deadline
	// flush fires at MaxWait, then the victim's batch must still execute
	// behind at most a few in-flight flooder batches.
	if eps := 5 * maxWait; p99 > maxWait+eps {
		t.Fatalf("victim p99 latency %v exceeds MaxWait(%v)+eps(%v); flooder delayed the victim", p99, maxWait, eps)
	}
	if floodShed.Load() == 0 {
		t.Fatalf("flooder was never shed (served %d): the budget share did not bind", floodServed.Load())
	}
	m := coal.Metrics()
	if m.ShedBudget != floodShed.Load() {
		t.Fatalf("shed attribution: coalescer %d budget sheds, flooder observed %d", m.ShedBudget, floodShed.Load())
	}
	if v := coal.tenantTele(victim).shed.Value(); v != 0 {
		t.Fatalf("victim shed counter %v, want 0", v)
	}
	if v := coal.tenantTele(flooder).shed.Value(); int64(v) != floodShed.Load() {
		t.Fatalf("flooder shed counter %v, want %d", v, floodShed.Load())
	}
}
