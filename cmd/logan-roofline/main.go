// Command logan-roofline reproduces the paper's §VII analysis: it runs
// the LOGAN kernel on the simulated V100, scales the accounting to the
// requested workload, and prints the instruction Roofline with the
// Eq. (1) adapted ceiling (paper Fig. 13).
//
// Usage:
//
//	logan-roofline [-x 100] [-pairs 16] [-paper-pairs 100000]
package main

import (
	"flag"
	"fmt"
	"os"

	"logan/internal/bench"
)

func main() {
	var (
		x          = flag.Int("x", 100, "X-drop threshold")
		pairs      = flag.Int("pairs", 16, "sample pairs to execute")
		paperPairs = flag.Int("paper-pairs", 100000, "workload size to model")
	)
	flag.Parse()

	scale := bench.DefaultScale()
	scale.Pairs = *pairs
	scale.PaperPairs = *paperPairs
	if *x != 100 {
		fmt.Fprintln(os.Stderr, "note: the paper's Fig. 13 operating point is X=100")
	}
	res, err := bench.RunFig13At(scale, int32(*x))
	if err != nil {
		fmt.Fprintf(os.Stderr, "logan-roofline: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(res.Table.Render())
	fmt.Println(res.Plot)
}
