// Command logan-map is the reference-mapping CLI over logan.Mapper: it
// builds (w,k)-minimizer indexes of reference FASTA sets and places
// reads against them through the minimize → chain → extend pipeline,
// emitting PAF. The PAF bytes are identical to what logan-serve's
// POST /map returns for the same reads and index — both front ends are
// the same library call.
//
// Usage:
//
//	logan-map build-index -ref ref.fa -o ref.lgi [-k 15] [-w 10] [-max-occ 256]
//	logan-map map (-index ref.lgi | -ref ref.fa) [reads.fa ...]
//	          [-x 100] [-backend cpu|gpu|hybrid] [-gpus 1] [-threads 0]
//	          [-max-secondary -1] [-o out.paf] [-stats]
//
// build-index streams the reference FASTA, extracts its minimizers and
// writes the versioned binary index (CRC-verified on load). map loads a
// saved index (or builds one in memory from -ref) and maps the reads
// from the named FASTA files — stdin when none are given — writing PAF
// to stdout or -o. -stats prints the run's pipeline statistics to
// stderr.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"logan"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "build-index":
		err = runBuildIndex(os.Args[2:])
	case "map":
		err = runMap(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "logan-map: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "logan-map: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  logan-map build-index -ref ref.fa -o ref.lgi [-k 15] [-w 10] [-max-occ 256]
  logan-map map (-index ref.lgi | -ref ref.fa) [reads.fa ...] [-x 100]
            [-backend cpu|gpu|hybrid] [-max-secondary -1] [-o out.paf] [-stats]`)
}

// runBuildIndex is the build-index subcommand: reference FASTA in,
// versioned binary minimizer index out.
func runBuildIndex(args []string) error {
	fs := flag.NewFlagSet("build-index", flag.ExitOnError)
	var (
		ref    = fs.String("ref", "", "reference FASTA to index (required)")
		out    = fs.String("o", "", "output index path (required)")
		k      = fs.Int("k", 0, "minimizer k-mer length (0 = 15)")
		w      = fs.Int("w", 0, "minimizer window (0 = 10)")
		maxOcc = fs.Int("max-occ", 0, "mask minimizers occurring more than this (0 = 256, negative = no masking)")
	)
	fs.Parse(args)
	if *ref == "" || *out == "" {
		return fmt.Errorf("build-index requires -ref and -o")
	}
	// build-index needs no extension engine, but the Mapper API hangs off
	// one; the smallest CPU engine serves as the construction context.
	eng, err := logan.NewAligner(logan.EngineOptions{Threads: 1})
	if err != nil {
		return err
	}
	defer eng.Close()
	m, err := logan.NewMapper(eng, logan.MapperOptions{})
	if err != nil {
		return err
	}
	f, err := os.Open(*ref)
	if err != nil {
		return err
	}
	start := time.Now()
	st, err := m.Build(context.Background(), f, logan.IndexOptions{K: *k, W: *w, MaxOccurrence: *maxOcc})
	f.Close()
	if err != nil {
		return err
	}
	o, err := os.Create(*out)
	if err != nil {
		return err
	}
	if err := m.Save(o); err != nil {
		o.Close()
		return err
	}
	if err := o.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr,
		"logan-map: indexed %d refs (%d bases) in %v: %d minimizers kept, %d k-mers masked, occupancy %.2f -> %s\n",
		st.Refs, st.Bases, time.Since(start).Round(time.Millisecond),
		st.Kept, st.MaskedKmers, st.Occupancy, *out)
	return nil
}

// runMap is the map subcommand: reads FASTA in, PAF out.
func runMap(args []string) error {
	fs := flag.NewFlagSet("map", flag.ExitOnError)
	var (
		index   = fs.String("index", "", "saved minimizer index (from build-index)")
		ref     = fs.String("ref", "", "reference FASTA to index in memory instead of -index")
		x       = fs.Int("x", 100, "X-drop threshold of the extension stage")
		backend = fs.String("backend", "cpu", "alignment backend: cpu, gpu or hybrid")
		gpus    = fs.Int("gpus", 1, "simulated GPU count (gpu and hybrid backends)")
		threads = fs.Int("threads", 0, "CPU worker count (0 = GOMAXPROCS)")
		k       = fs.Int("k", 0, "minimizer k-mer length for -ref (0 = 15)")
		w       = fs.Int("w", 0, "minimizer window for -ref (0 = 10)")
		maxOcc  = fs.Int("max-occ", 0, "mask -ref minimizers occurring more than this (0 = 256)")
		maxSec  = fs.Int("max-secondary", -1, "secondary placements per primary locus (negative = 5, 0 = primaries only)")
		out     = fs.String("o", "", "output PAF path (empty = stdout)")
		stats   = fs.Bool("stats", false, "print run statistics to stderr")
	)
	fs.Parse(args)
	if (*index == "") == (*ref == "") {
		return fmt.Errorf("map requires exactly one of -index and -ref")
	}
	opt := logan.EngineOptions{Threads: *threads, GPUs: *gpus}
	switch *backend {
	case "cpu":
	case "gpu":
		opt.Backend = logan.GPU
	case "hybrid":
		opt.Backend = logan.Hybrid
	default:
		return fmt.Errorf("unknown backend %q (want cpu, gpu or hybrid)", *backend)
	}
	eng, err := logan.NewAligner(opt)
	if err != nil {
		return err
	}
	defer eng.Close()
	m, err := logan.NewMapper(eng, logan.MapperOptions{})
	if err != nil {
		return err
	}
	if *index != "" {
		f, err := os.Open(*index)
		if err != nil {
			return err
		}
		_, err = m.Load(f)
		f.Close()
		if err != nil {
			return err
		}
	} else {
		f, err := os.Open(*ref)
		if err != nil {
			return err
		}
		_, err = m.Build(context.Background(), f, logan.IndexOptions{K: *k, W: *w, MaxOccurrence: *maxOcc})
		f.Close()
		if err != nil {
			return err
		}
	}

	cfg := logan.DefaultMapConfig(int32(*x))
	cfg.MaxSecondary = *maxSec

	dst := io.Writer(os.Stdout)
	if *out != "" {
		o, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer o.Close()
		dst = o
	}
	bw := bufio.NewWriter(dst)

	var total logan.MapStats
	mapOne := func(name string, r io.Reader) error {
		res, err := m.MapFasta(context.Background(), r, cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		if err := logan.WritePAF(bw, res.Records); err != nil {
			return err
		}
		total.Reads += res.Stats.Reads
		total.Mapped += res.Stats.Mapped
		total.Anchors += res.Stats.Anchors
		total.Chains += res.Stats.Chains
		total.Extensions += res.Stats.Extensions
		total.Cells += res.Stats.Cells
		total.WallTime += res.Stats.WallTime
		return nil
	}
	if fs.NArg() == 0 {
		if err := mapOne("stdin", os.Stdin); err != nil {
			return err
		}
	}
	for _, path := range fs.Args() {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		err = mapOne(path, f)
		f.Close()
		if err != nil {
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	if *stats {
		fmt.Fprintf(os.Stderr,
			"logan-map: mapped %d/%d reads in %v (%d anchors, %d chains, %d extensions, %d cells)\n",
			total.Mapped, total.Reads, total.WallTime.Round(time.Millisecond),
			total.Anchors, total.Chains, total.Extensions, total.Cells)
	}
	return nil
}
