package main

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"logan"
	"logan/internal/seq"
)

// benchServe measures aggregate serve-path throughput under the workload
// the coalescer exists for: 64 concurrent clients, each keeping one small
// 16-pair request in flight at all times (closed-loop per client, open
// queue overall). Requests are driven straight through the handler
// (ServeHTTP, no sockets) so the comparison isolates the serve path —
// JSON decode, batching policy, engine, JSON encode — from network
// jitter. The backend is the hybrid CPU+2×GPU scheduler, where every
// per-request 16-pair batch pays its own partition/staging round; with
// coalescing on, the flusher merges whatever accumulates while the
// previous engine batch runs, so the engine sees hundreds-of-pairs
// batches instead of 64 independent 16-pair ones.
//
// The pairs/s metric is the comparison that matters between the two
// benchmarks below.
func benchServe(b *testing.B, coalesce bool) {
	eng, err := logan.NewAligner(logan.EngineOptions{Backend: logan.Hybrid, GPUs: 2})
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()
	cfg := defaultServeConfig()
	cfg.defCfg = logan.DefaultConfig(50)
	cfg.coalesce = coalesce
	cfg.coalescePairs = 512
	cfg.maxWait = time.Millisecond
	s, err := newServer(eng, cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()

	const clients, pairsPer = 64, 16
	rng := rand.New(rand.NewSource(11))
	raw := seq.RandPairSet(rng, seq.PairSetOptions{
		N: pairsPer, MinLen: 40, MaxLen: 80, ErrorRate: 0.15, SeedLen: 17,
	})
	js := make([]string, len(raw))
	for i, p := range raw {
		js[i] = fmt.Sprintf(`{"query":%q,"target":%q,"seedQ":%d,"seedT":%d,"seedLen":%d}`,
			p.Query, p.Target, p.SeedQPos, p.SeedTPos, p.SeedLen)
	}
	body := `{"pairs":[` + strings.Join(js, ",") + `]}`

	// Warm the engine before timing: the hybrid scheduler's throughput
	// estimates converge over the first batches, and the staging pools
	// grow to steady-state size.
	warm := make([]logan.Pair, 0, 512)
	for len(warm) < 512 {
		for _, p := range raw {
			warm = append(warm, logan.Pair{Query: []byte(p.Query), Target: []byte(p.Target),
				SeedQ: p.SeedQPos, SeedT: p.SeedTPos, SeedLen: p.SeedLen})
		}
	}
	warm = warm[:512]
	for i := 0; i < 8; i++ {
		if _, _, err := eng.Align(context.Background(), warm, logan.DefaultConfig(50)); err != nil {
			b.Fatal(err)
		}
	}

	// RunParallel(p) spins p*GOMAXPROCS goroutines: pin the in-flight
	// request count to `clients` regardless of the host's core count.
	b.SetParallelism((clients + runtime.GOMAXPROCS(0) - 1) / runtime.GOMAXPROCS(0))
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			req := httptest.NewRequest("POST", "/align", strings.NewReader(body))
			rec := httptest.NewRecorder()
			s.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				b.Errorf("status %d: %s", rec.Code, rec.Body.String())
				return
			}
		}
	})
	b.StopTimer()
	b.ReportMetric(float64(b.N*pairsPer)/b.Elapsed().Seconds(), "pairs/s")
}

// BenchmarkServePerRequest is the pre-coalescer serve path: every request
// becomes its own engine batch.
func BenchmarkServePerRequest(b *testing.B) { benchServe(b, false) }

// BenchmarkServeCoalesced routes the same traffic through the coalescing
// layer: concurrent requests merge into engine-sized batches.
func BenchmarkServeCoalesced(b *testing.B) { benchServe(b, true) }
