package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"logan/internal/telemetry"
)

var (
	promComment = regexp.MustCompile(`^# (HELP|TYPE) ([a-zA-Z_:][a-zA-Z0-9_:]*) (.*)$`)
	promSample  = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^{}]*\})? (\S+)$`)
	promLabel   = regexp.MustCompile(`^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"$`)
)

// promSeries is one parsed sample line.
type promSeries struct {
	labels map[string]string
	value  float64
}

// lintPromText validates the Prometheus text exposition format (0.0.4):
// HELP/TYPE comments precede their family's samples, TYPE appears once
// per family, sample lines parse, histogram families have cumulative
// buckets with a +Inf count equal to _count. It returns every sample
// keyed by metric name for content assertions.
func lintPromText(t *testing.T, text string) map[string][]promSeries {
	t.Helper()
	if !strings.HasSuffix(text, "\n") {
		t.Error("exposition does not end with a newline")
	}
	typed := map[string]string{} // family -> kind
	samples := map[string][]promSeries{}
	for ln, line := range strings.Split(strings.TrimSuffix(text, "\n"), "\n") {
		if line == "" {
			t.Errorf("line %d: empty line", ln+1)
			continue
		}
		if m := promComment.FindStringSubmatch(line); m != nil {
			if m[1] == "TYPE" {
				if _, dup := typed[m[2]]; dup {
					t.Errorf("line %d: duplicate TYPE for %s", ln+1, m[2])
				}
				switch m[3] {
				case "counter", "gauge", "histogram", "untyped":
				default:
					t.Errorf("line %d: bad TYPE %q", ln+1, m[3])
				}
				typed[m[2]] = m[3]
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Errorf("line %d: malformed comment %q", ln+1, line)
			continue
		}
		m := promSample.FindStringSubmatch(line)
		if m == nil {
			t.Errorf("line %d: malformed sample %q", ln+1, line)
			continue
		}
		name, rawLabels, rawVal := m[1], m[2], m[3]
		// A histogram's _bucket/_sum/_count samples belong to the base
		// family's TYPE declaration.
		family := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, suf)
			if base != name && typed[base] == "histogram" {
				family = base
				break
			}
		}
		if _, ok := typed[family]; !ok {
			t.Errorf("line %d: sample %s before its TYPE", ln+1, name)
		}
		val, err := strconv.ParseFloat(rawVal, 64)
		if err != nil {
			t.Errorf("line %d: value %q: %v", ln+1, rawVal, err)
			continue
		}
		labels := map[string]string{}
		if rawLabels != "" {
			for _, lv := range strings.Split(strings.Trim(rawLabels, "{}"), ",") {
				pm := promLabel.FindStringSubmatch(lv)
				if pm == nil {
					t.Errorf("line %d: malformed label %q", ln+1, lv)
					continue
				}
				labels[pm[1]] = pm[2]
			}
		}
		samples[name] = append(samples[name], promSeries{labels: labels, value: val})
	}

	// Histogram invariants: per series, buckets cumulative and the +Inf
	// bucket count equals _count.
	for fam, kind := range typed {
		if kind != "histogram" {
			continue
		}
		counts := map[string]float64{}
		for _, s := range samples[fam+"_count"] {
			counts[seriesKey(s.labels, "")] = s.value
		}
		buckets := map[string][]promSeries{}
		for _, s := range samples[fam+"_bucket"] {
			k := seriesKey(s.labels, "le")
			buckets[k] = append(buckets[k], s)
		}
		for k, bs := range buckets {
			prev, sawInf := -1.0, false
			for _, b := range bs {
				if b.value < prev {
					t.Errorf("%s_bucket %s: non-cumulative buckets", fam, k)
				}
				prev = b.value
				if b.labels["le"] == "+Inf" {
					sawInf = true
					if c, ok := counts[k]; !ok || c != b.value {
						t.Errorf("%s %s: +Inf bucket %g != count %g", fam, k, b.value, c)
					}
				}
			}
			if !sawInf {
				t.Errorf("%s_bucket %s: missing +Inf bucket", fam, k)
			}
		}
	}
	return samples
}

// seriesKey renders a label set minus one key, for grouping bucket lines.
func seriesKey(labels map[string]string, drop string) string {
	parts := make([]string, 0, len(labels))
	for k, v := range labels {
		if k != drop {
			parts = append(parts, k+"="+v)
		}
	}
	// Insertion-order independence matters more than prettiness here.
	for i := 0; i < len(parts); i++ {
		for j := i + 1; j < len(parts); j++ {
			if parts[j] < parts[i] {
				parts[i], parts[j] = parts[j], parts[i]
			}
		}
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// scrape fetches /metrics and returns the body.
func scrape(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("GET /metrics: Content-Type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// TestMetricsEndpoint drives traffic through the coalesced serve path and
// lints GET /metrics: valid exposition format, all five stage histograms
// populated, per-backend series present, HTTP counters consistent.
func TestMetricsEndpoint(t *testing.T) {
	srv, _ := testServer(t)
	for i := 0; i < 3; i++ {
		resp, data := postAlign(t, srv.URL,
			`{"pairs":[{"query":"ACGTACGTACGTACGT","target":"ACGTACGTACGTACGT","seedQ":4,"seedT":4,"seedLen":4}]}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("align %d: status %d: %s", i, resp.StatusCode, data)
		}
		if tr := resp.Header.Get("X-Logan-Trace"); !strings.Contains(tr, "admit=") {
			t.Fatalf("align %d: X-Logan-Trace %q missing admit span", i, tr)
		}
	}

	samples := lintPromText(t, scrape(t, srv.URL))

	stageCounts := map[string]float64{}
	for _, s := range samples["logan_stage_duration_seconds_count"] {
		stageCounts[s.labels["stage"]] = s.value
	}
	for _, stage := range telemetry.StageNames() {
		if stageCounts[stage] == 0 {
			t.Errorf("stage histogram %q has no observations: %v", stage, stageCounts)
		}
	}

	wantNonZero := []string{
		"logan_http_requests_total",
		"logan_http_pairs_total",
		"logan_engine_batches_total",
		"logan_engine_pairs_total",
		"logan_engine_cells_total",
		"logan_coalescer_enqueued_total",
		"logan_coalescer_merged_pairs_total",
		"logan_coalescer_cells_per_pair",
	}
	for _, name := range wantNonZero {
		ss := samples[name]
		if len(ss) == 0 || ss[0].value == 0 {
			t.Errorf("%s: missing or zero (%v)", name, ss)
		}
	}
	backends := map[string]bool{}
	for _, s := range samples["logan_backend_pairs_total"] {
		backends[s.labels["backend"]] = true
	}
	if !backends["cpu"] {
		t.Errorf("logan_backend_pairs_total missing backend=\"cpu\": %v", backends)
	}
	for _, name := range []string{"logan_backend_gcups", "logan_backend_occupancy"} {
		if len(samples[name]) == 0 {
			t.Errorf("%s: no per-backend series", name)
		}
	}
	// Shed counters exist (zero here) so dashboards can rate() them from
	// the first scrape.
	if len(samples["logan_coalescer_shed_total"]) != 4 {
		t.Errorf("logan_coalescer_shed_total: want 4 reason series, got %v",
			samples["logan_coalescer_shed_total"])
	}
	// The three identical requests hit the result cache after the first:
	// the cache series must show exactly one miss set and two hit sets.
	if ss := samples["logan_cache_hits_total"]; len(ss) == 0 || ss[0].value != 2 {
		t.Errorf("logan_cache_hits_total: want 2, got %v", ss)
	}
	if ss := samples["logan_cache_misses_total"]; len(ss) == 0 || ss[0].value != 1 {
		t.Errorf("logan_cache_misses_total: want 1, got %v", ss)
	}
	// Anonymous traffic is still attributed: the per-tenant series exist
	// with tenant="anonymous".
	found := false
	for _, s := range samples["logan_tenant_pairs_total"] {
		if s.labels["tenant"] == "anonymous" && s.value == 3 {
			found = true
		}
	}
	if !found {
		t.Errorf("logan_tenant_pairs_total missing tenant=\"anonymous\" with 3 pairs: %v",
			samples["logan_tenant_pairs_total"])
	}
}

// TestMetricsStatzAgree: /metrics and /statz are views over the same
// registry, so totals taken with the server quiesced must agree.
func TestMetricsStatzAgree(t *testing.T) {
	srv, _ := testServer(t)
	// Wait out the startup warm-up alignment: until /readyz flips, the
	// engine's backend counters may still gain the warm-up pair.
	waitReady(t, srv.URL)
	for i := 0; i < 2; i++ {
		resp, data := postAlign(t, srv.URL,
			`{"pairs":[{"query":"ACGTACGTACGTACGT","target":"ACGTACGTACGTACGT","seedQ":4,"seedT":4,"seedLen":4}]}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("align: status %d: %s", resp.StatusCode, data)
		}
	}
	resp, err := http.Get(srv.URL + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	var stz statzJSON
	err = json.NewDecoder(resp.Body).Decode(&stz)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	samples := lintPromText(t, scrape(t, srv.URL))
	// The scrape itself increments the request counter after /statz ran;
	// allow for requests made between the two reads.
	if got := samples["logan_http_pairs_total"][0].value; int64(got) != stz.Pairs {
		t.Errorf("pairs: metrics %g vs statz %d", got, stz.Pairs)
	}
	if got := samples["logan_http_cells_total"][0].value; int64(got) != stz.Cells {
		t.Errorf("cells: metrics %g vs statz %d", got, stz.Cells)
	}
	// The backend only sees cache misses; hits complete without engine
	// work, so backend pairs plus cache hits cover the HTTP total — plus
	// the one warm-up self-alignment the server ran at startup, which
	// exercises the engine without passing through the HTTP layer.
	const warmupPairs = 1
	cpu, ok := stz.Backends["cpu"]
	if !ok || stz.Cache == nil || cpu.Pairs+stz.Cache.Hits != stz.Pairs+warmupPairs {
		t.Errorf("statz backends: %+v cache %+v, want cpu+hits = %d pairs", stz.Backends, stz.Cache, stz.Pairs+warmupPairs)
	}
	// The repeated request is a cache hit: merged (engine) pairs plus
	// cache hits must cover every pair the HTTP layer served.
	if stz.Coalescer == nil || stz.Cache == nil ||
		stz.Coalescer.MergedPairs+stz.Cache.Hits != stz.Pairs {
		t.Errorf("statz coalescer %+v cache %+v vs %d pairs", stz.Coalescer, stz.Cache, stz.Pairs)
	}
	ten, ok := stz.Tenants["anonymous"]
	if !ok || ten.Pairs != stz.Pairs {
		t.Errorf("statz tenants: %+v, want anonymous with %d pairs", stz.Tenants, stz.Pairs)
	}
}

// TestMetricsConcurrentScrape hammers /align and /jobs while scraping
// /metrics and /statz — under -race this is the data-race acceptance test
// for the whole telemetry spine.
func TestMetricsConcurrentScrape(t *testing.T) {
	cfg := defaultServeConfig()
	cfg.maxWait = time.Millisecond
	srv, _, _ := testServerCfg(t, cfg)

	const (
		aligners = 4
		scrapers = 2
		rounds   = 20
	)
	var wg sync.WaitGroup
	for i := 0; i < aligners; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"pairs":[{"query":"ACGTACGTACGTACGT","target":"ACGTACGTACGTACGT","seedQ":4,"seedT":4,"seedLen":4}],"x":%d}`, 50+i)
			for r := 0; r < rounds; r++ {
				resp, err := http.Post(srv.URL+"/align", "application/json", strings.NewReader(body))
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusTooManyRequests {
					t.Errorf("align: status %d", resp.StatusCode)
				}
			}
		}(i)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		fasta := ">r1\nACGTACGTACGTACGTACGTACGTACGTACGT\n>r2\nACGTACGTACGTACGTACGTACGTACGTACGT\n"
		for r := 0; r < 4; r++ {
			resp, err := http.Post(srv.URL+"/jobs?x=50", "application/x-fasta", strings.NewReader(fasta))
			if err != nil {
				t.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	errCh := make(chan string, scrapers*rounds)
	for i := 0; i < scrapers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				resp, err := http.Get(srv.URL + "/metrics")
				if err != nil {
					t.Error(err)
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				errCh <- string(body)
				sresp, err := http.Get(srv.URL + "/statz")
				if err != nil {
					t.Error(err)
					return
				}
				var stz statzJSON
				if err := json.NewDecoder(sresp.Body).Decode(&stz); err != nil {
					t.Errorf("statz decode: %v", err)
				}
				sresp.Body.Close()
			}
		}()
	}
	wg.Wait()
	close(errCh)
	// Every mid-load scrape must already be well-formed, not just the
	// final quiesced one.
	for body := range errCh {
		lintPromText(t, body)
	}
}
