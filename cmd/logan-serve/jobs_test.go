package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"logan"
	"logan/internal/genome"
	"logan/internal/seq"
)

// jobsTestFasta builds a deterministic FASTA data set with real overlaps.
func jobsTestFasta(t testing.TB, seed int64, genomeLen int) []byte {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := genome.Synthetic(rng, "t", genome.SyntheticOptions{Length: genomeLen, RepeatFrac: 0.03, RepeatLen: 1200})
	rs := genome.Simulate(rng, g, genome.SimOptions{Coverage: 5, MinLen: 900, MaxLen: 2000, ErrorRate: 0.12})
	var buf bytes.Buffer
	if err := seq.WriteFasta(&buf, rs.Records()); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// jobsTestServer boots a serve stack with the /jobs API enabled on the
// given engine shape.
func jobsTestServer(t *testing.T, opt logan.EngineOptions, mut func(*serveConfig)) (*httptest.Server, *server) {
	t.Helper()
	eng, err := logan.NewAligner(opt)
	if err != nil {
		t.Fatal(err)
	}
	cfg := defaultServeConfig()
	cfg.maxWait = time.Millisecond
	if mut != nil {
		mut(&cfg)
	}
	s, err := newServer(eng, cfg)
	if err != nil {
		eng.Close()
		t.Fatal(err)
	}
	srv := httptest.NewServer(s)
	t.Cleanup(func() {
		s.Close()
		srv.Close()
		eng.Close()
	})
	return srv, s
}

// localStore unwraps the server's JobStore as the in-process
// implementation, for tests that assert on its internal counters.
func localStore(t *testing.T, s *server) *jobStore {
	t.Helper()
	st, ok := s.store.(*jobStore)
	if !ok {
		t.Fatalf("server store is %T, want *jobStore", s.store)
	}
	return st
}

// postJob submits a FASTA body and returns the job id.
func postJob(t *testing.T, url string, fasta []byte, query string) string {
	t.Helper()
	resp, err := http.Post(url+"/jobs"+query, "application/x-fasta", bytes.NewReader(fasta))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /jobs: status %d: %s", resp.StatusCode, body)
	}
	var st jobStatusJSON
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("POST /jobs response %q: %v", body, err)
	}
	if st.ID == "" || st.State != string(jobQueued) {
		t.Fatalf("POST /jobs response %+v", st)
	}
	return st.ID
}

// getStatus fetches GET /jobs/{id}.
func getStatus(t *testing.T, url, id string) (jobStatusJSON, int) {
	t.Helper()
	resp, err := http.Get(url + "/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return jobStatusJSON{}, resp.StatusCode
	}
	var st jobStatusJSON
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("status %q: %v", body, err)
	}
	return st, resp.StatusCode
}

// waitJob polls until the job reaches a terminal state.
func waitJob(t *testing.T, url, id string, timeout time.Duration) jobStatusJSON {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		st, code := getStatus(t, url, id)
		if code != http.StatusOK {
			t.Fatalf("GET /jobs/%s: status %d", id, code)
		}
		if jobState(st.State).terminal() {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after %v (progress %+v)", id, st.State, timeout, st.Progress)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestJobsLifecycle is the acceptance path: POST FASTA, poll status
// through completion, fetch PAF bit-identical to an offline Overlapper
// run of the same configuration, then DELETE and observe 404 — on both a
// CPU and a Hybrid engine, with and without the coalescer.
func TestJobsLifecycle(t *testing.T) {
	fasta := jobsTestFasta(t, 21, 50_000)
	const query = "?x=20&minOverlap=400&coverage=5&errorRate=0.12"

	// Offline reference: the same pipeline the cmd/bella binary runs.
	refEng, err := logan.NewAligner(logan.EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer refEng.Close()
	refOv, _ := logan.NewOverlapper(refEng, logan.OverlapperOptions{})
	refCfg := logan.DefaultOverlapConfig(5, 0.12, 20)
	refCfg.MinOverlap = 400
	refRes, err := refOv.RunFasta(context.Background(), bytes.NewReader(fasta), refCfg)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := logan.WritePAF(&want, refRes.Records); err != nil {
		t.Fatal(err)
	}
	if want.Len() == 0 {
		t.Fatal("offline reference produced no overlaps; test set too small")
	}

	for _, tc := range []struct {
		name string
		opt  logan.EngineOptions
		mut  func(*serveConfig)
	}{
		{"cpu-direct", logan.EngineOptions{}, nil},
		{"cpu-coalesced", logan.EngineOptions{}, func(c *serveConfig) { c.jobCoalesce = true }},
		{"hybrid", logan.EngineOptions{Backend: logan.Hybrid, GPUs: 2}, nil},
	} {
		t.Run(tc.name, func(t *testing.T) {
			srv, _ := jobsTestServer(t, tc.opt, tc.mut)
			id := postJob(t, srv.URL, fasta, query)

			st := waitJob(t, srv.URL, id, 60*time.Second)
			if st.State != string(jobDone) {
				t.Fatalf("job finished %s: %s", st.State, st.Error)
			}
			if st.Progress == nil || st.Progress.Stage != string(logan.StageDone) {
				t.Fatalf("done job progress %+v", st.Progress)
			}
			if st.Progress.ReadsParsed == 0 || st.Progress.CandidatePairs == 0 ||
				st.Progress.ExtensionsDone != st.Progress.ExtensionsTotal {
				t.Errorf("implausible final progress %+v", st.Progress)
			}
			if st.Overlaps != len(refRes.Records) {
				t.Errorf("job found %d overlaps, offline run %d", st.Overlaps, len(refRes.Records))
			}

			resp, err := http.Get(srv.URL + "/jobs/" + id + "/paf")
			if err != nil {
				t.Fatal(err)
			}
			paf, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("GET paf: status %d: %s", resp.StatusCode, paf)
			}
			if !bytes.Equal(paf, want.Bytes()) {
				t.Errorf("served PAF diverges from the offline pipeline (%d vs %d bytes)", len(paf), want.Len())
			}

			req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/jobs/"+id, nil)
			resp, err = http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusNoContent {
				t.Fatalf("DELETE: status %d", resp.StatusCode)
			}
			if _, code := getStatus(t, srv.URL, id); code != http.StatusNotFound {
				t.Fatalf("GET after DELETE: status %d, want 404", code)
			}
		})
	}
}

// TestJobsCancel aborts a long-running job mid-extension and expects the
// runner to observe the cancellation promptly.
func TestJobsCancel(t *testing.T) {
	fasta := jobsTestFasta(t, 22, 120_000)
	srv, s := jobsTestServer(t, logan.EngineOptions{}, nil)
	// A deliberately expensive configuration: X=2000 explores wide bands.
	id := postJob(t, srv.URL, fasta, "?x=2000&minOverlap=400&coverage=5&errorRate=0.12")

	// Wait for the alignment stage to actually start.
	deadline := time.Now().Add(60 * time.Second)
	for {
		st, code := getStatus(t, srv.URL, id)
		if code != http.StatusOK {
			t.Fatalf("GET: %d", code)
		}
		if jobState(st.State).terminal() {
			t.Skipf("job finished (%s) before the cancellation point; machine too fast", st.State)
		}
		if st.State == string(jobRunning) && st.Progress != nil && st.Progress.ExtensionsTotal > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never reached the extension stage")
		}
		time.Sleep(5 * time.Millisecond)
	}

	start := time.Now()
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/jobs/"+id, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("DELETE: status %d", resp.StatusCode)
	}
	if _, code := getStatus(t, srv.URL, id); code != http.StatusNotFound {
		t.Fatalf("GET after DELETE: %d, want 404", code)
	}

	// The runner must observe ctx promptly (per pair on the CPU pool):
	// poll the jobs totals until the cancellation lands.
	for localStore(t, s).t.canceled.Value() == 0 {
		if time.Since(start) > 10*time.Second {
			t.Fatal("cancellation not observed within 10s")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := time.Since(start); got > 10*time.Second {
		t.Fatalf("cancellation took %v", got)
	}
}

// TestJobsAdmissionAndErrors covers the error surface: invalid configs,
// invalid FASTA, full stores, unknown ids, data-dir sandboxing, and the
// disabled API.
func TestJobsAdmissionAndErrors(t *testing.T) {
	fasta := jobsTestFasta(t, 23, 30_000)
	srv, s := jobsTestServer(t, logan.EngineOptions{}, func(c *serveConfig) {
		c.maxJobs = 2
		c.jobWorkers = 1
		c.jobBodyLimit = int64(len(fasta) + 1024)
	})

	post := func(body, ct, query string) (int, string) {
		resp, err := http.Post(srv.URL+"/jobs"+query, ct, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}

	if code, body := post("ACGT", "application/x-fasta", "?k=99"); code != http.StatusBadRequest {
		t.Errorf("k=99: status %d (%s), want 400", code, body)
	}
	if code, body := post("ACGT", "application/x-fasta", "?x=1000000"); code != http.StatusBadRequest {
		t.Errorf("x over max-x: status %d (%s), want 400", code, body)
	}
	if code, body := post("ACGT", "application/x-fasta", "?x=abc"); code != http.StatusBadRequest {
		t.Errorf("x=abc: status %d (%s), want 400", code, body)
	}
	if code, body := post("", "application/x-fasta", ""); code != http.StatusBadRequest {
		t.Errorf("empty body: status %d (%s), want 400", code, body)
	}
	if code, body := post(string(fasta)+strings.Repeat("A", 2048), "application/x-fasta", ""); code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: status %d (%.100s), want 413", code, body)
	}
	// fastaPath submissions need -job-data-dir.
	if code, body := post(`{"fastaPath":"x.fa"}`, "application/json", ""); code != http.StatusBadRequest {
		t.Errorf("fastaPath without data dir: status %d (%s), want 400", code, body)
	}

	// A malformed FASTA is accepted (the parse is part of the job) and
	// fails asynchronously.
	id := postJob(t, srv.URL, []byte("not fasta at all"), "")
	st := waitJob(t, srv.URL, id, 30*time.Second)
	if st.State != string(jobFailed) || st.Error == "" {
		t.Errorf("bad FASTA job: %+v, want failed with error", st)
	}
	// Its PAF is unavailable.
	resp, err := http.Get(srv.URL + "/jobs/" + id + "/paf")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("paf of failed job: status %d, want 409", resp.StatusCode)
	}

	// Unknown ids are 404 everywhere.
	for _, p := range []string{"/jobs/deadbeef", "/jobs/deadbeef/paf"} {
		resp, err := http.Get(srv.URL + p)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s: status %d, want 404", p, resp.StatusCode)
		}
	}

	// Fill the store with live jobs: maxJobs=2, one worker. Two real jobs
	// occupy the store (one running, one queued; the failed job above is
	// terminal and gets evicted), so a third submission sheds with 429.
	idA := postJob(t, srv.URL, fasta, "?x=500&coverage=5&errorRate=0.12")
	idB := postJob(t, srv.URL, fasta, "?x=500&coverage=5&errorRate=0.12")
	code, body := post(string(fasta), "application/x-fasta", "")
	if code != http.StatusTooManyRequests {
		t.Errorf("submission to full store: status %d (%.100s), want 429", code, body)
	}
	if localStore(t, s).t.rejected.Value() == 0 {
		t.Error("rejected submission not counted")
	}
	// Drain so cleanup does not race long-running work.
	for _, id := range []string{idA, idB} {
		req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/jobs/"+id, nil)
		if resp, err := http.DefaultClient.Do(req); err == nil {
			resp.Body.Close()
		}
	}
}

// TestJobsByteBudget checks the aggregate upload-byte budget: queued
// uploads (blocked behind the single worker, so their ingestion has not
// started) hold their reservation, and submissions past the budget shed
// with 429 even though the job-count cap is not reached. A running job
// releases its reservation once ingestion completes.
func TestJobsByteBudget(t *testing.T) {
	fasta := jobsTestFasta(t, 26, 40_000)
	srv, s := jobsTestServer(t, logan.EngineOptions{}, func(c *serveConfig) {
		c.jobWorkers = 1
		c.jobBodyLimit = int64(len(fasta) + 1024)
		// Budget fits one and a half uploads: the running (post-ingest,
		// released) job plus one queued reservation, but not two.
		c.jobPendingBytes = int64(len(fasta)) + int64(len(fasta))/2
	})
	// Job A: expensive (x=500) so it occupies the worker for a while.
	idA := postJob(t, srv.URL, fasta, "?x=500&coverage=5&errorRate=0.12")
	// Wait until A's ingestion finished — its reservation is released.
	deadline := time.Now().Add(30 * time.Second)
	for localStore(t, s).bufferedBytes.Load() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("job A's upload reservation never released after ingestion")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Job B queues behind A (1 worker): its reservation is held.
	idB := postJob(t, srv.URL, fasta, "?x=15&coverage=5&errorRate=0.12")
	// Job C would push reservations to 2× the upload size — over budget.
	resp, err := http.Post(srv.URL+"/jobs", "application/x-fasta", bytes.NewReader(fasta))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("upload past byte budget: status %d (%.100s), want 429", resp.StatusCode, body)
	}
	// Drain: cancel A, let B run; once B ingests, uploads admit again.
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/jobs/"+idA, nil)
	if resp, err := http.DefaultClient.Do(req); err == nil {
		resp.Body.Close()
	}
	deadline = time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Post(srv.URL+"/jobs?x=15&coverage=5&errorRate=0.12", "application/x-fasta", bytes.NewReader(fasta))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusAccepted {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("upload still shed after the queue drained")
		}
		time.Sleep(10 * time.Millisecond)
	}
	_ = idB
}

// TestJobsResultBudget checks retained-PAF eviction: when finished jobs'
// aggregate PAF bytes exceed the result budget, the oldest terminal job
// is evicted (404) while the newest result survives.
func TestJobsResultBudget(t *testing.T) {
	fasta := jobsTestFasta(t, 27, 40_000)
	srv, _ := jobsTestServer(t, logan.EngineOptions{}, func(c *serveConfig) {
		// Far below one run's PAF output (tens of KB), so the second
		// completion must evict the first.
		c.jobResultBytes = 1024
	})
	idA := postJob(t, srv.URL, fasta, "?x=15&minOverlap=400&coverage=5&errorRate=0.12")
	stA := waitJob(t, srv.URL, idA, 60*time.Second)
	if stA.State != string(jobDone) || stA.PAFBytes <= 1024 {
		t.Fatalf("job A: %+v (need a PAF larger than the budget)", stA)
	}
	idB := postJob(t, srv.URL, fasta, "?x=15&minOverlap=400&coverage=5&errorRate=0.12")
	stB := waitJob(t, srv.URL, idB, 60*time.Second)
	if stB.State != string(jobDone) {
		t.Fatalf("job B: %+v", stB)
	}
	if _, code := getStatus(t, srv.URL, idA); code != http.StatusNotFound {
		t.Errorf("oldest result not evicted: GET A = %d, want 404", code)
	}
	resp, err := http.Get(srv.URL + "/jobs/" + idB + "/paf")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("newest result must survive eviction: GET B paf = %d", resp.StatusCode)
	}
}

// TestJobsDataDir exercises server-side fastaPath submissions and the
// path sandbox.
func TestJobsDataDir(t *testing.T) {
	fasta := jobsTestFasta(t, 24, 30_000)
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "reads.fa"), fasta, 0o644); err != nil {
		t.Fatal(err)
	}
	srv, _ := jobsTestServer(t, logan.EngineOptions{}, func(c *serveConfig) {
		c.jobDataDir = dir
	})

	post := func(req string) (int, string) {
		resp, err := http.Post(srv.URL+"/jobs", "application/json", strings.NewReader(req))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}

	for _, bad := range []string{
		`{"fastaPath":"../etc/passwd"}`,
		`{"fastaPath":"/etc/passwd"}`,
		`{"fastaPath":""}`,
	} {
		if code, body := post(bad); code != http.StatusBadRequest {
			t.Errorf("%s: status %d (%s), want 400", bad, code, body)
		}
	}

	code, body := post(`{"fastaPath":"reads.fa","config":{"x":15,"minOverlap":400,"coverage":5,"errorRate":0.12}}`)
	if code != http.StatusAccepted {
		t.Fatalf("fastaPath submit: status %d (%s)", code, body)
	}
	var st jobStatusJSON
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	fin := waitJob(t, srv.URL, st.ID, 60*time.Second)
	if fin.State != string(jobDone) || fin.Overlaps == 0 {
		t.Fatalf("fastaPath job: %+v", fin)
	}

	// A missing file fails the job, not the submission.
	code, body = post(`{"fastaPath":"nope.fa"}`)
	if code != http.StatusAccepted {
		t.Fatalf("missing-file submit: status %d (%s)", code, body)
	}
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	fin = waitJob(t, srv.URL, st.ID, 30*time.Second)
	if fin.State != string(jobFailed) {
		t.Fatalf("missing-file job: %+v", fin)
	}
}

// TestJobsDisabled checks the -jobs=false surface.
func TestJobsDisabled(t *testing.T) {
	srv, _ := jobsTestServer(t, logan.EngineOptions{}, func(c *serveConfig) { c.jobs = false })
	resp, err := http.Post(srv.URL+"/jobs", "application/x-fasta", strings.NewReader(">r\nACGT\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("POST with jobs disabled: status %d, want 404", resp.StatusCode)
	}
	resp, err = http.Get(srv.URL + "/jobs/abc")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET with jobs disabled: status %d, want 404", resp.StatusCode)
	}
}

// TestJobsStatz checks the /statz jobs block counts a completed run.
func TestJobsStatz(t *testing.T) {
	fasta := jobsTestFasta(t, 25, 30_000)
	srv, _ := jobsTestServer(t, logan.EngineOptions{}, nil)
	id := postJob(t, srv.URL, fasta, "?x=15&minOverlap=400&coverage=5&errorRate=0.12")
	st := waitJob(t, srv.URL, id, 60*time.Second)
	if st.State != string(jobDone) {
		t.Fatalf("job: %+v", st)
	}

	resp, err := http.Get(srv.URL + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out statzJSON
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Jobs == nil {
		t.Fatal("statz missing jobs block")
	}
	if out.Jobs.Submitted != 1 || out.Jobs.Completed != 1 || out.Jobs.PAFBytes == 0 {
		t.Errorf("jobs statz %+v", out.Jobs)
	}
	if out.Jobs.Running != 0 || out.Jobs.Queued != 0 {
		t.Errorf("jobs gauges not drained: %+v", out.Jobs)
	}
	_ = fmt.Sprintf("%v", out)
}
