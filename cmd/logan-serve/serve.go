package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"logan"
)

// alignRequest is the POST /align payload: a batch of seeded pairs plus
// optional request-scoped alignment parameters. Omitted fields fall back
// to the server's defaults (the -x flag and linear +1/-1/-1), so v1
// clients keep working unchanged.
type alignRequest struct {
	Pairs []pairJSON `json:"pairs"`
	// X overrides the server's default X-drop threshold for this request.
	X *int32 `json:"x"`
	// Scoring overrides the server's default scheme for this request.
	Scoring *scoringJSON `json:"scoring"`
}

// scoringJSON selects a scoring scheme per request. Mode is "linear"
// (default; match/mismatch/gap required), "affine" (match/mismatch/
// gapOpen/gapExtend) or "blosum62" (gap). Invalid schemes are rejected
// with 400 before any pair is queued; affine and blosum62 requests on a
// pure-GPU server fail with 422 (the kernel is linear-DNA only).
type scoringJSON struct {
	Mode      string `json:"mode"`
	Match     int32  `json:"match"`
	Mismatch  int32  `json:"mismatch"`
	Gap       int32  `json:"gap"`
	GapOpen   int32  `json:"gapOpen"`
	GapExtend int32  `json:"gapExtend"`
}

type pairJSON struct {
	Query   string `json:"query"`
	Target  string `json:"target"`
	SeedQ   int    `json:"seedQ"`
	SeedT   int    `json:"seedT"`
	SeedLen int    `json:"seedLen"`
}

// scoreParamLimit is a sanity bound on the magnitude of client-supplied
// score parameters; any real scheme is orders of magnitude below it. The
// int32 score-overflow invariant itself (parameter magnitude times pair
// length below MaxInt32) is enforced per pair by the engine's ingest,
// shared by every entry point, and surfaces here as 422.
const scoreParamLimit = 1 << 20

// requestConfig resolves a request's alignment configuration: the
// server's defaults overridden by the request's optional "x" and
// "scoring" fields, validated and bounded before admission. X is
// attacker-controlled work amplification — X-drop pruning is what keeps
// per-pair cost at O(band*length) instead of O(n*m) — so it is capped at
// -max-x just like body size and batch size are capped.
func (s *server) requestConfig(req *alignRequest) (logan.Config, error) {
	cfg := s.defCfg
	if req.X != nil {
		if *req.X > s.maxX {
			return logan.Config{}, fmt.Errorf("x %d exceeds the server's %d limit", *req.X, s.maxX)
		}
		cfg.X = *req.X
	}
	if req.Scoring != nil {
		sc := req.Scoring
		for _, v := range []int32{sc.Match, sc.Mismatch, sc.Gap, sc.GapOpen, sc.GapExtend} {
			if v > scoreParamLimit || v < -scoreParamLimit {
				return logan.Config{}, fmt.Errorf("score parameter %d outside [%d, %d]", v, -scoreParamLimit, scoreParamLimit)
			}
		}
		switch sc.Mode {
		case "", "linear":
			cfg.Scoring = logan.LinearScoring(sc.Match, sc.Mismatch, sc.Gap)
		case "affine":
			cfg.Scoring = logan.AffineScoring(sc.Match, sc.Mismatch, sc.GapOpen, sc.GapExtend)
		case "blosum62":
			if sc.Gap >= 0 {
				return logan.Config{}, fmt.Errorf("blosum62 gap penalty %d must be negative", sc.Gap)
			}
			cfg.Scoring = logan.MatrixScoring(logan.Blosum62(sc.Gap))
		default:
			return logan.Config{}, fmt.Errorf("unknown scoring mode %q (want linear, affine or blosum62)", sc.Mode)
		}
	}
	if err := cfg.Validate(); err != nil {
		return logan.Config{}, err
	}
	return cfg, nil
}

// alignResponse mirrors logan.Align's results and stats.
type alignResponse struct {
	Alignments []alignmentJSON `json:"alignments"`
	Stats      statsJSON       `json:"stats"`
}

type alignmentJSON struct {
	Score  int32 `json:"score"`
	QBegin int   `json:"qBegin"`
	QEnd   int   `json:"qEnd"`
	TBegin int   `json:"tBegin"`
	TEnd   int   `json:"tEnd"`
	Cells  int64 `json:"cells"`
}

type statsJSON struct {
	Pairs    int     `json:"pairs"`
	Cells    int64   `json:"cells"`
	WallNS   int64   `json:"wallNs"`
	DeviceNS int64   `json:"deviceNs,omitempty"`
	GCUPS    float64 `json:"gcups"`
}

// serverTotals are the process-lifetime counters behind GET /statz.
type serverTotals struct {
	Requests atomic.Int64
	Pairs    atomic.Int64
	Cells    atomic.Int64
	Errors   atomic.Int64
	// Shed counts requests rejected by admission control (HTTP 429); they
	// are also included in Errors.
	Shed atomic.Int64
	// WriteErrors counts responses that failed to encode to the client
	// (connection gone mid-response). The alignment work was already done
	// and is counted in Pairs/Cells; only the delivery failed.
	WriteErrors atomic.Int64

	// per-backend breakdown, keyed by the worker name ("cpu", "gpu0"...)
	// reported in Stats.PerBackend.
	mu         sync.Mutex
	perBackend map[string]*backendTotals
}

// backendTotals accumulates one execution worker's lifetime share.
type backendTotals struct {
	Pairs  int64
	Cells  int64
	TimeNS int64
}

// addBatch folds one batch's per-backend stats into the totals.
func (t *serverTotals) addBatch(per []logan.BackendStats) {
	if len(per) == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.perBackend == nil {
		t.perBackend = make(map[string]*backendTotals)
	}
	for _, b := range per {
		bt := t.perBackend[b.Name]
		if bt == nil {
			bt = &backendTotals{}
			t.perBackend[b.Name] = bt
		}
		bt.Pairs += int64(b.Pairs)
		bt.Cells += b.Cells
		bt.TimeNS += b.Time.Nanoseconds()
	}
}

// backendSnapshot copies the per-backend totals for /statz.
func (t *serverTotals) backendSnapshot() map[string]backendStatzJSON {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]backendStatzJSON, len(t.perBackend))
	for name, bt := range t.perBackend {
		out[name] = backendStatzJSON{Pairs: bt.Pairs, Cells: bt.Cells, TimeNS: bt.TimeNS}
	}
	return out
}

// serveConfig tunes the HTTP surface; defaultServeConfig gives the
// production defaults that main's flags override.
type serveConfig struct {
	// maxPairs bounds one request's batch; bodyLimit bounds its wire size.
	maxPairs  int
	bodyLimit int64
	// defCfg is the default alignment configuration applied to requests
	// that omit "x"/"scoring"; the zero value selects DefaultConfig(100).
	defCfg logan.Config
	// maxX caps the per-request "x" field (0 selects 10000): X scales
	// the DP band, so an unbounded client value would amplify per-pair
	// work to full quadratic DP.
	maxX int32
	// coalesce enables the cross-request batching layer; maxWait,
	// coalescePairs and maxPending map onto logan.CoalescerOptions
	// (zero values select that type's defaults).
	coalesce      bool
	maxWait       time.Duration
	coalescePairs int
	maxPending    int
	// jobs enables the async /jobs overlap API; jobWorkers bounds the
	// concurrently running jobs, maxJobs the retained job records,
	// jobBodyLimit one FASTA upload's bytes, and jobDataDir (when set)
	// the root for server-side fastaPath submissions.
	jobs         bool
	jobWorkers   int
	maxJobs      int
	jobBodyLimit int64
	// jobPendingBytes bounds the aggregate FASTA bytes buffered by live
	// upload jobs — without it, maxJobs queued uploads of jobBodyLimit
	// each could pin maxJobs×jobBodyLimit of heap behind a few worker
	// slots. jobResultBytes bounds the aggregate PAF bytes retained by
	// finished jobs (output size is unrelated to input size), enforced by
	// evicting the oldest terminal jobs.
	jobPendingBytes int64
	jobResultBytes  int64
	jobDataDir      string
	// jobCoalesce routes job extension chunks through the request
	// coalescer (merging them with same-config /align traffic) instead of
	// straight onto the engine's backend. The default is direct: the
	// backend observes a canceled job per pair, while a coalesced chunk
	// already executing must finish its whole merged batch first — with
	// large X that postpones DELETE by a full batch.
	jobCoalesce bool
}

func defaultServeConfig() serveConfig {
	return serveConfig{
		maxPairs:        100_000,
		bodyLimit:       256 << 20,
		defCfg:          logan.DefaultConfig(100),
		maxX:            10_000,
		coalesce:        true,
		jobs:            true,
		jobWorkers:      2,
		maxJobs:         64,
		jobBodyLimit:    64 << 20,
		jobPendingBytes: 256 << 20,
		jobResultBytes:  256 << 20,
	}
}

// server wires one shared Aligner engine into the HTTP surface. With
// coalescing on (the default), handler goroutines enqueue into a shared
// logan.Coalescer that merges concurrent requests into engine-sized
// batches and sheds overload with 429; with it off, each handler calls
// the engine directly and concurrency is per resource (CPU batches
// interleave across the worker pool, GPU batches serialize per device).
type server struct {
	eng          *logan.Aligner
	coal         *logan.Coalescer // nil when coalescing is disabled
	jobs         *jobStore        // nil when the /jobs API is disabled
	mux          *http.ServeMux
	totals       serverTotals
	defCfg       logan.Config
	maxX         int32
	maxPairs     int
	bodyLimit    int64
	jobBodyLimit int64
	retryAfter   string // Retry-After seconds advertised on 429
}

// newServer builds the HTTP surface for an engine. Callers must Close the
// returned server (after the HTTP listener has drained) to stop the
// coalescer's flusher; Close does not close the engine.
func newServer(eng *logan.Aligner, cfg serveConfig) *server {
	def := defaultServeConfig()
	if cfg.maxPairs <= 0 {
		cfg.maxPairs = def.maxPairs
	}
	if cfg.bodyLimit <= 0 {
		cfg.bodyLimit = def.bodyLimit
	}
	if cfg.defCfg == (logan.Config{}) {
		cfg.defCfg = def.defCfg
	}
	if cfg.maxX <= 0 {
		cfg.maxX = def.maxX
	}
	if cfg.jobBodyLimit <= 0 {
		cfg.jobBodyLimit = def.jobBodyLimit
	}
	s := &server{eng: eng, defCfg: cfg.defCfg, maxX: cfg.maxX, maxPairs: cfg.maxPairs,
		bodyLimit: cfg.bodyLimit, jobBodyLimit: cfg.jobBodyLimit}
	if cfg.coalesce {
		s.coal = eng.NewCoalescer(logan.CoalescerOptions{
			MaxBatchPairs: cfg.coalescePairs,
			MaxWait:       cfg.maxWait,
			MaxPending:    cfg.maxPending,
			// Per-backend accounting is batch-scoped: one merged batch
			// serves many requests, so the flusher reports it once here
			// instead of each handler double-counting it.
			OnFlush: func(st logan.Stats, _ int) { s.totals.addBatch(st.PerBackend) },
		})
		s.retryAfter = strconv.Itoa(max(1, int(math.Ceil(s.coal.Options().MaxWait.Seconds()))))
	}
	if cfg.jobs {
		// Jobs extend on the same engine as /align traffic. With
		// -job-coalesce their chunks additionally flow through the merge
		// queue (and shed/retry under its admission control); the default
		// is the engine-direct path for per-pair cancellation.
		var oopt logan.OverlapperOptions
		if cfg.jobCoalesce {
			if s.coal == nil {
				// main rejects this flag combination; reaching it here is
				// a programming error that must not silently downgrade to
				// the direct path.
				panic("logan-serve: jobCoalesce requires coalesce")
			}
			oopt.Coalescer = s.coal
		}
		ov, err := logan.NewOverlapper(eng, oopt)
		if err != nil {
			panic(err) // unreachable: eng is non-nil
		}
		s.jobs = newJobStore(ov, cfg.jobWorkers, cfg.maxJobs, cfg.jobDataDir, cfg.jobPendingBytes, cfg.jobResultBytes)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /align", s.handleAlign)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /statz", s.handleStatz)
	mux.HandleFunc("POST /jobs", s.handleJobSubmit)
	mux.HandleFunc("GET /jobs/{id}", s.handleJobStatus)
	mux.HandleFunc("GET /jobs/{id}/paf", s.handleJobPAF)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleJobDelete)
	s.mux = mux
	return s
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Close cancels live jobs, waits for their runners, then stops the
// coalescer after flushing queued requests. Call it after the HTTP server
// has stopped accepting work and before the engine closes.
func (s *server) Close() {
	if s.jobs != nil {
		s.jobs.Close()
	}
	if s.coal != nil {
		s.coal.Close()
	}
}

func (s *server) fail(w http.ResponseWriter, code int, format string, args ...any) {
	s.totals.Errors.Add(1)
	http.Error(w, fmt.Sprintf(format, args...), code)
}

func (s *server) handleAlign(w http.ResponseWriter, r *http.Request) {
	s.totals.Requests.Add(1)
	var req alignRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.bodyLimit))
	if err := dec.Decode(&req); err != nil {
		// A body over the wire limit surfaces as a decode error; report it
		// as 413 naming the limit, not a generic 400.
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.fail(w, http.StatusRequestEntityTooLarge,
				"request body exceeds the %d-byte limit", tooBig.Limit)
			return
		}
		s.fail(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	// Exactly one JSON document: trailing garbage after it is a client bug
	// that must not be silently accepted.
	if err := dec.Decode(&struct{}{}); !errors.Is(err, io.EOF) {
		s.fail(w, http.StatusBadRequest, "bad request: trailing data after JSON document")
		return
	}
	if len(req.Pairs) > s.maxPairs {
		s.fail(w, http.StatusRequestEntityTooLarge,
			"batch of %d pairs exceeds the %d-pair limit", len(req.Pairs), s.maxPairs)
		return
	}
	cfg, err := s.requestConfig(&req)
	if err != nil {
		// Invalid schemes are a client error, rejected before any pair
		// queues — a malformed configuration never reaches the engine.
		s.fail(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	pairs := make([]logan.Pair, len(req.Pairs))
	for i, p := range req.Pairs {
		pairs[i] = logan.Pair{
			Query:  []byte(p.Query),
			Target: []byte(p.Target),
			SeedQ:  p.SeedQ, SeedT: p.SeedT, SeedLen: p.SeedLen,
		}
	}

	var (
		out []logan.Alignment
		st  logan.Stats
	)
	if s.coal != nil {
		out, st, err = s.coal.Align(r.Context(), pairs, cfg)
	} else {
		out, st, err = s.eng.Align(r.Context(), pairs, cfg)
	}
	if err != nil {
		switch {
		case errors.Is(err, logan.ErrOverloaded):
			// Shed, don't queue: the pending budget is full. The client
			// should retry once the current batches drain.
			s.totals.Shed.Add(1)
			w.Header().Set("Retry-After", s.retryAfter)
			s.fail(w, http.StatusTooManyRequests, "overloaded: %v", err)
		case errors.Is(err, logan.ErrUnsupportedConfig):
			// Well-formed scheme this server's backend cannot execute
			// (affine/matrix on a pure-GPU engine).
			s.fail(w, http.StatusUnprocessableEntity, "align: %v", err)
		case errors.Is(err, logan.ErrClosed):
			s.fail(w, http.StatusServiceUnavailable, "align: %v", err)
		case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
			// The client abandoned the request mid-queue; the status is
			// for the books — nobody is left to read it.
			s.fail(w, http.StatusRequestTimeout, "align: %v", err)
		default:
			s.fail(w, http.StatusUnprocessableEntity, "align: %v", err)
		}
		return
	}
	s.totals.Pairs.Add(int64(st.Pairs))
	s.totals.Cells.Add(st.Cells)
	if s.coal == nil {
		// With coalescing on, batch-scoped per-backend stats arrive via
		// the OnFlush hook instead.
		s.totals.addBatch(st.PerBackend)
	}

	resp := alignResponse{
		Alignments: make([]alignmentJSON, len(out)),
		Stats: statsJSON{
			Pairs: st.Pairs, Cells: st.Cells,
			WallNS: st.WallTime.Nanoseconds(), DeviceNS: st.DeviceTime.Nanoseconds(),
			GCUPS: st.GCUPS,
		},
	}
	for i, a := range out {
		resp.Alignments[i] = alignmentJSON{
			Score: a.Score, QBegin: a.QBegin, QEnd: a.QEnd,
			TBegin: a.TBegin, TEnd: a.TEnd, Cells: a.Cells,
		}
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		s.totals.WriteErrors.Add(1)
	}
}

func (s *server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, `{"status":"ok"}`)
}

// statzJSON is the GET /statz payload: process-lifetime totals, the
// per-backend breakdown (which execution workers — CPU pool, each GPU —
// served how much of the traffic), and the coalescer's counters when
// cross-request batching is enabled.
type statzJSON struct {
	Requests    int64                       `json:"requests"`
	Pairs       int64                       `json:"pairs"`
	Cells       int64                       `json:"cells"`
	Errors      int64                       `json:"errors"`
	Shed        int64                       `json:"shed"`
	WriteErrors int64                       `json:"writeErrors"`
	Backends    map[string]backendStatzJSON `json:"backends"`
	Coalescer   *coalescerStatzJSON         `json:"coalescer,omitempty"`
	Jobs        *jobsStatzJSON              `json:"jobs,omitempty"`
}

type backendStatzJSON struct {
	Pairs  int64 `json:"pairs"`
	Cells  int64 `json:"cells"`
	TimeNS int64 `json:"timeNs"`
}

// coalescerStatzJSON mirrors logan.CoalescerMetrics on the wire.
type coalescerStatzJSON struct {
	Enqueued        int64 `json:"enqueued"`
	Shed            int64 `json:"shed"`
	Direct          int64 `json:"direct"`
	MergedBatches   int64 `json:"mergedBatches"`
	SizeFlushes     int64 `json:"sizeFlushes"`
	DeadlineFlushes int64 `json:"deadlineFlushes"`
	DrainFlushes    int64 `json:"drainFlushes"`
	MergedPairs     int64 `json:"mergedPairs"`
	MergedRequests  int64 `json:"mergedRequests"`
	MaxMergedPairs  int64 `json:"maxMergedPairs"`
	WaitNS          int64 `json:"waitNs"`
	QueuedRequests  int   `json:"queuedRequests"`
	QueuedPairs     int   `json:"queuedPairs"`
	QueuedConfigs   int   `json:"queuedConfigs"`
}

func (s *server) handleStatz(w http.ResponseWriter, _ *http.Request) {
	out := statzJSON{
		Requests:    s.totals.Requests.Load(),
		Pairs:       s.totals.Pairs.Load(),
		Cells:       s.totals.Cells.Load(),
		Errors:      s.totals.Errors.Load(),
		Shed:        s.totals.Shed.Load(),
		WriteErrors: s.totals.WriteErrors.Load(),
		Backends:    s.totals.backendSnapshot(),
	}
	if s.coal != nil {
		m := s.coal.Metrics()
		out.Coalescer = &coalescerStatzJSON{
			Enqueued:        m.Enqueued,
			Shed:            m.Shed,
			Direct:          m.Direct,
			MergedBatches:   m.MergedBatches,
			SizeFlushes:     m.SizeFlushes,
			DeadlineFlushes: m.DeadlineFlushes,
			DrainFlushes:    m.DrainFlushes,
			MergedPairs:     m.MergedPairs,
			MergedRequests:  m.MergedRequests,
			MaxMergedPairs:  m.MaxMergedPairs,
			WaitNS:          m.WaitNS,
			QueuedRequests:  m.QueuedRequests,
			QueuedPairs:     m.QueuedPairs,
			QueuedConfigs:   m.QueuedConfigs,
		}
	}
	if s.jobs != nil {
		out.Jobs = s.jobs.statz()
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(out); err != nil {
		s.totals.WriteErrors.Add(1)
	}
}
