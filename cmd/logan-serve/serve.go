package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"

	"logan"
)

// alignRequest is the POST /align payload: a batch of seeded pairs.
type alignRequest struct {
	Pairs []pairJSON `json:"pairs"`
}

type pairJSON struct {
	Query   string `json:"query"`
	Target  string `json:"target"`
	SeedQ   int    `json:"seedQ"`
	SeedT   int    `json:"seedT"`
	SeedLen int    `json:"seedLen"`
}

// alignResponse mirrors logan.Align's results and stats.
type alignResponse struct {
	Alignments []alignmentJSON `json:"alignments"`
	Stats      statsJSON       `json:"stats"`
}

type alignmentJSON struct {
	Score  int32 `json:"score"`
	QBegin int   `json:"qBegin"`
	QEnd   int   `json:"qEnd"`
	TBegin int   `json:"tBegin"`
	TEnd   int   `json:"tEnd"`
	Cells  int64 `json:"cells"`
}

type statsJSON struct {
	Pairs    int     `json:"pairs"`
	Cells    int64   `json:"cells"`
	WallNS   int64   `json:"wallNs"`
	DeviceNS int64   `json:"deviceNs,omitempty"`
	GCUPS    float64 `json:"gcups"`
}

// serverTotals are the process-lifetime counters behind GET /statz.
type serverTotals struct {
	Requests atomic.Int64
	Pairs    atomic.Int64
	Cells    atomic.Int64
	Errors   atomic.Int64

	// per-backend breakdown, keyed by the worker name ("cpu", "gpu0"...)
	// reported in Stats.PerBackend.
	mu         sync.Mutex
	perBackend map[string]*backendTotals
}

// backendTotals accumulates one execution worker's lifetime share.
type backendTotals struct {
	Pairs  int64
	Cells  int64
	TimeNS int64
}

// addBatch folds one batch's per-backend stats into the totals.
func (t *serverTotals) addBatch(per []logan.BackendStats) {
	if len(per) == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.perBackend == nil {
		t.perBackend = make(map[string]*backendTotals)
	}
	for _, b := range per {
		bt := t.perBackend[b.Name]
		if bt == nil {
			bt = &backendTotals{}
			t.perBackend[b.Name] = bt
		}
		bt.Pairs += int64(b.Pairs)
		bt.Cells += b.Cells
		bt.TimeNS += b.Time.Nanoseconds()
	}
}

// backendSnapshot copies the per-backend totals for /statz.
func (t *serverTotals) backendSnapshot() map[string]backendStatzJSON {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]backendStatzJSON, len(t.perBackend))
	for name, bt := range t.perBackend {
		out[name] = backendStatzJSON{Pairs: bt.Pairs, Cells: bt.Cells, TimeNS: bt.TimeNS}
	}
	return out
}

// server wires one shared Aligner engine into the HTTP surface. Handler
// goroutines call the engine directly: CPU batches interleave across its
// worker pool, GPU batches serialize per device (concurrent requests
// proceed on different devices), and hybrid batches shard across both.
type server struct {
	eng       *logan.Aligner
	totals    serverTotals
	maxPairs  int
	bodyLimit int64
}

// newServer returns the HTTP handler for an engine. maxPairs bounds the
// batch size of one request (0 selects 100k pairs).
func newServer(eng *logan.Aligner, maxPairs int) http.Handler {
	if maxPairs <= 0 {
		maxPairs = 100_000
	}
	s := &server{eng: eng, maxPairs: maxPairs, bodyLimit: 256 << 20}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /align", s.handleAlign)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /statz", s.handleStatz)
	return mux
}

func (s *server) fail(w http.ResponseWriter, code int, format string, args ...any) {
	s.totals.Errors.Add(1)
	http.Error(w, fmt.Sprintf(format, args...), code)
}

func (s *server) handleAlign(w http.ResponseWriter, r *http.Request) {
	s.totals.Requests.Add(1)
	var req alignRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.bodyLimit))
	if err := dec.Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	if len(req.Pairs) > s.maxPairs {
		s.fail(w, http.StatusRequestEntityTooLarge,
			"batch of %d pairs exceeds the %d-pair limit", len(req.Pairs), s.maxPairs)
		return
	}
	pairs := make([]logan.Pair, len(req.Pairs))
	for i, p := range req.Pairs {
		pairs[i] = logan.Pair{
			Query:  []byte(p.Query),
			Target: []byte(p.Target),
			SeedQ:  p.SeedQ, SeedT: p.SeedT, SeedLen: p.SeedLen,
		}
	}
	out, st, err := s.eng.Align(pairs)
	if err != nil {
		code := http.StatusUnprocessableEntity
		if errors.Is(err, logan.ErrClosed) {
			code = http.StatusServiceUnavailable
		}
		s.fail(w, code, "align: %v", err)
		return
	}
	s.totals.Pairs.Add(int64(st.Pairs))
	s.totals.Cells.Add(st.Cells)
	s.totals.addBatch(st.PerBackend)

	resp := alignResponse{
		Alignments: make([]alignmentJSON, len(out)),
		Stats: statsJSON{
			Pairs: st.Pairs, Cells: st.Cells,
			WallNS: st.WallTime.Nanoseconds(), DeviceNS: st.DeviceTime.Nanoseconds(),
			GCUPS: st.GCUPS,
		},
	}
	for i, a := range out {
		resp.Alignments[i] = alignmentJSON{
			Score: a.Score, QBegin: a.QBegin, QEnd: a.QEnd,
			TBegin: a.TBegin, TEnd: a.TEnd, Cells: a.Cells,
		}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

func (s *server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, `{"status":"ok"}`)
}

// statzJSON is the GET /statz payload: process-lifetime totals plus the
// per-backend breakdown (which execution workers — CPU pool, each GPU —
// served how much of the traffic).
type statzJSON struct {
	Requests int64                       `json:"requests"`
	Pairs    int64                       `json:"pairs"`
	Cells    int64                       `json:"cells"`
	Errors   int64                       `json:"errors"`
	Backends map[string]backendStatzJSON `json:"backends"`
}

type backendStatzJSON struct {
	Pairs  int64 `json:"pairs"`
	Cells  int64 `json:"cells"`
	TimeNS int64 `json:"timeNs"`
}

func (s *server) handleStatz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(statzJSON{
		Requests: s.totals.Requests.Load(),
		Pairs:    s.totals.Pairs.Load(),
		Cells:    s.totals.Cells.Load(),
		Errors:   s.totals.Errors.Load(),
		Backends: s.totals.backendSnapshot(),
	})
}
