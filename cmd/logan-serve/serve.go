package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"logan"
	"logan/internal/cluster"
	"logan/internal/telemetry"
)

// alignRequest is the POST /align payload: a batch of seeded pairs plus
// optional request-scoped alignment parameters. Omitted fields fall back
// to the server's defaults (the -x flag and linear +1/-1/-1), so v1
// clients keep working unchanged.
type alignRequest struct {
	Pairs []pairJSON `json:"pairs"`
	// X overrides the server's default X-drop threshold for this request.
	X *int32 `json:"x"`
	// Scoring overrides the server's default scheme for this request.
	Scoring *scoringJSON `json:"scoring"`
}

// scoringJSON selects a scoring scheme per request. Mode is "linear"
// (default; match/mismatch/gap required), "affine" (match/mismatch/
// gapOpen/gapExtend) or "blosum62" (gap). Invalid schemes are rejected
// with 400 before any pair is queued; affine and blosum62 requests on a
// pure-GPU server fail with 422 (the kernel is linear-DNA only).
type scoringJSON struct {
	Mode      string `json:"mode"`
	Match     int32  `json:"match"`
	Mismatch  int32  `json:"mismatch"`
	Gap       int32  `json:"gap"`
	GapOpen   int32  `json:"gapOpen"`
	GapExtend int32  `json:"gapExtend"`
}

type pairJSON struct {
	Query   string `json:"query"`
	Target  string `json:"target"`
	SeedQ   int    `json:"seedQ"`
	SeedT   int    `json:"seedT"`
	SeedLen int    `json:"seedLen"`
}

// scoreParamLimit is a sanity bound on the magnitude of client-supplied
// score parameters; any real scheme is orders of magnitude below it. The
// int32 score-overflow invariant itself (parameter magnitude times pair
// length below MaxInt32) is enforced per pair by the engine's ingest,
// shared by every entry point, and surfaces here as 422.
const scoreParamLimit = 1 << 20

// requestConfig resolves a request's alignment configuration: the
// server's defaults overridden by the request's optional "x" and
// "scoring" fields, validated and bounded before admission. X is
// attacker-controlled work amplification — X-drop pruning is what keeps
// per-pair cost at O(band*length) instead of O(n*m) — so it is capped at
// -max-x just like body size and batch size are capped.
func (s *server) requestConfig(req *alignRequest) (logan.Config, error) {
	cfg := s.defCfg
	if req.X != nil {
		if *req.X > s.maxX {
			return logan.Config{}, fmt.Errorf("x %d exceeds the server's %d limit", *req.X, s.maxX)
		}
		cfg.X = *req.X
	}
	if req.Scoring != nil {
		sc := req.Scoring
		for _, v := range []int32{sc.Match, sc.Mismatch, sc.Gap, sc.GapOpen, sc.GapExtend} {
			if v > scoreParamLimit || v < -scoreParamLimit {
				return logan.Config{}, fmt.Errorf("score parameter %d outside [%d, %d]", v, -scoreParamLimit, scoreParamLimit)
			}
		}
		switch sc.Mode {
		case "", "linear":
			cfg.Scoring = logan.LinearScoring(sc.Match, sc.Mismatch, sc.Gap)
		case "affine":
			cfg.Scoring = logan.AffineScoring(sc.Match, sc.Mismatch, sc.GapOpen, sc.GapExtend)
		case "blosum62":
			if sc.Gap >= 0 {
				return logan.Config{}, fmt.Errorf("blosum62 gap penalty %d must be negative", sc.Gap)
			}
			cfg.Scoring = logan.MatrixScoring(logan.Blosum62(sc.Gap))
		default:
			return logan.Config{}, fmt.Errorf("unknown scoring mode %q (want linear, affine or blosum62)", sc.Mode)
		}
	}
	if err := cfg.Validate(); err != nil {
		return logan.Config{}, err
	}
	return cfg, nil
}

// alignResponse mirrors logan.Align's results and stats.
type alignResponse struct {
	Alignments []alignmentJSON `json:"alignments"`
	Stats      statsJSON       `json:"stats"`
}

type alignmentJSON struct {
	Score  int32 `json:"score"`
	QBegin int   `json:"qBegin"`
	QEnd   int   `json:"qEnd"`
	TBegin int   `json:"tBegin"`
	TEnd   int   `json:"tEnd"`
	Cells  int64 `json:"cells"`
}

type statsJSON struct {
	Pairs    int     `json:"pairs"`
	Cells    int64   `json:"cells"`
	WallNS   int64   `json:"wallNs"`
	DeviceNS int64   `json:"deviceNs,omitempty"`
	GCUPS    float64 `json:"gcups"`
}

// serverTelemetry are the HTTP layer's instruments, registered in the
// engine's registry so one registry — and one atomic Snapshot of it —
// backs /metrics, /statz and the library counters alike. The per-backend
// breakdown that serverTotals used to track privately now comes from the
// engine's own logan_backend_* series.
type serverTelemetry struct {
	requests *telemetry.Counter
	pairs    *telemetry.Counter
	cells    *telemetry.Counter
	// errors counts failed requests; shed counts the 429 subset (also
	// included in errors). writeErrors counts responses that failed to
	// encode to the client (connection gone mid-response) — the alignment
	// work was already done and is counted in pairs/cells; only the
	// delivery failed.
	errors      *telemetry.Counter
	shed        *telemetry.Counter
	writeErrors *telemetry.Counter
}

func newServerTelemetry(reg *telemetry.Registry) serverTelemetry {
	return serverTelemetry{
		requests:    reg.Counter("logan_http_requests_total", "HTTP requests received (all endpoints)."),
		pairs:       reg.Counter("logan_http_pairs_total", "Pairs served by successful /align responses."),
		cells:       reg.Counter("logan_http_cells_total", "DP cells behind successful /align responses."),
		errors:      reg.Counter("logan_http_errors_total", "Requests answered with an error status."),
		shed:        reg.Counter("logan_http_shed_total", "Requests shed by admission control (HTTP 429)."),
		writeErrors: reg.Counter("logan_http_write_errors_total", "Responses that failed to encode to the client."),
	}
}

// serveConfig tunes the HTTP surface; defaultServeConfig gives the
// production defaults that main's flags override.
type serveConfig struct {
	// maxPairs bounds one request's batch; bodyLimit bounds its wire size.
	maxPairs  int
	bodyLimit int64
	// defCfg is the default alignment configuration applied to requests
	// that omit "x"/"scoring"; the zero value selects DefaultConfig(100).
	defCfg logan.Config
	// maxX caps the per-request "x" field (0 selects 10000): X scales
	// the DP band, so an unbounded client value would amplify per-pair
	// work to full quadratic DP.
	maxX int32
	// coalesce enables the cross-request batching layer; maxWait,
	// coalescePairs, maxPending and targetDelay map onto
	// logan.CoalescerOptions (zero values select that type's defaults:
	// maxPending 0 means adaptive admission bounded by targetDelay).
	coalesce      bool
	maxWait       time.Duration
	coalescePairs int
	maxPending    int
	targetDelay   time.Duration
	// bulkMaxWait is the flush deadline for bulk-class lanes (job
	// extension chunks routed through the coalescer); zero selects the
	// coalescer's default of 4x maxWait.
	bulkMaxWait time.Duration
	// apiKeys maps client API keys onto tenants (parsed from -api-keys
	// by loadAPIKeys); empty means the open single-tenant deployment
	// where every request is anonymous and unmetered.
	apiKeys map[string]*logan.Tenant
	// cacheEntries bounds the content-addressed result cache shared by
	// all tenants (0 disables it). Cached responses are byte-identical
	// to recomputation — the key covers sequence bytes, seed placement
	// and the full scoring configuration — so the cache is safe to share
	// across tenants: a hit reveals nothing the prober could not compute
	// from its own request.
	cacheEntries int
	// jobs enables the async /jobs overlap API; jobWorkers bounds the
	// concurrently running jobs, maxJobs the retained job records,
	// jobBodyLimit one FASTA upload's bytes, and jobDataDir (when set)
	// the root for server-side fastaPath submissions.
	jobs         bool
	jobWorkers   int
	maxJobs      int
	jobBodyLimit int64
	// jobPendingBytes bounds the aggregate FASTA bytes buffered by live
	// upload jobs — without it, maxJobs queued uploads of jobBodyLimit
	// each could pin maxJobs×jobBodyLimit of heap behind a few worker
	// slots. jobResultBytes bounds the aggregate PAF bytes retained by
	// finished jobs (output size is unrelated to input size), enforced by
	// evicting the oldest terminal jobs.
	jobPendingBytes int64
	jobResultBytes  int64
	jobDataDir      string
	// jobCoalesce routes job extension chunks through the request
	// coalescer (merging them with same-config /align traffic) instead of
	// straight onto the engine's backend. The default is direct: the
	// backend observes a canceled job per pair, while a coalesced chunk
	// already executing must finish its whole merged batch first — with
	// large X that postpones DELETE by a full batch.
	jobCoalesce bool
	// maps enables the reference-mapping API: POST /map places FASTA
	// reads against the installed minimizer index (built asynchronously
	// via POST /map/index, or at startup from -map-ref/-map-index).
	maps bool
	// cluster switches the /jobs subsystem from the in-process store to
	// the router tier: accepted jobs persist to the write-ahead queue at
	// clusterQueue and execute on registered logan-worker nodes under
	// expiring leases. leaseTTL/workerTTL/maxRequeues tune the failure
	// detector (zero values select cluster.RouterOptions defaults), and
	// clusterToken, when set, gates the worker API.
	cluster      bool
	clusterQueue string
	leaseTTL     time.Duration
	workerTTL    time.Duration
	maxRequeues  int
	clusterToken string
}

func defaultServeConfig() serveConfig {
	return serveConfig{
		maxPairs:        100_000,
		bodyLimit:       256 << 20,
		defCfg:          logan.DefaultConfig(100),
		maxX:            10_000,
		coalesce:        true,
		cacheEntries:    8192,
		jobs:            true,
		jobWorkers:      2,
		maxJobs:         64,
		jobBodyLimit:    64 << 20,
		jobPendingBytes: 256 << 20,
		jobResultBytes:  256 << 20,
		maps:            true,
	}
}

// server wires one shared Aligner engine into the HTTP surface. With
// coalescing on (the default), handler goroutines enqueue into a shared
// logan.Coalescer that merges concurrent requests into engine-sized
// batches and sheds overload with 429; with it off, each handler calls
// the engine directly and concurrency is per resource (CPU batches
// interleave across the worker pool, GPU batches serialize per device).
type server struct {
	eng  *logan.Aligner
	coal *logan.Coalescer // nil when coalescing is disabled
	// store backs the /jobs API (nil when disabled): the in-process
	// jobStore on a single node, the cluster Router in -cluster mode.
	// router is the same object as store in cluster mode, typed for the
	// rollup and /statz views only it provides.
	store  cluster.JobStore
	router *cluster.Router
	// maps backs the reference-mapping API (nil when disabled): the
	// shared Mapper plus the single-slot async index build.
	maps *mapTier
	mux  *http.ServeMux
	// dataDir roots server-side fastaPath submissions ("" disables them).
	dataDir string
	// ready flips once the warmup alignment completes; /readyz also
	// requires store.Ready() (in router mode: ≥1 registered worker).
	ready atomic.Bool
	// tele is the engine's registry — the one store behind /metrics and
	// /statz; stages is a handle on the engine's stage-latency histogram
	// family, used to start per-request traces.
	tele         *telemetry.Registry
	stages       *telemetry.Stages
	m            serverTelemetry
	defCfg       logan.Config
	maxX         int32
	maxPairs     int
	bodyLimit    int64
	jobBodyLimit int64
	// keys maps API keys onto tenants; empty means the open deployment
	// (tenantFor resolves every request to the nil tenant).
	keys map[string]*logan.Tenant
	// cache is the content-addressed result cache handed to the
	// coalescer; retained here for the /statz cache block.
	cache *logan.ResultCache
}

// newServer builds the HTTP surface for an engine. Callers must Close the
// returned server (after the HTTP listener has drained) to stop the
// coalescer's flusher and the job store; Close does not close the engine.
// Construction only fails in -cluster mode, when the write-ahead queue
// cannot be opened.
func newServer(eng *logan.Aligner, cfg serveConfig) (*server, error) {
	def := defaultServeConfig()
	if cfg.maxPairs <= 0 {
		cfg.maxPairs = def.maxPairs
	}
	if cfg.bodyLimit <= 0 {
		cfg.bodyLimit = def.bodyLimit
	}
	if cfg.defCfg == (logan.Config{}) {
		cfg.defCfg = def.defCfg
	}
	if cfg.maxX <= 0 {
		cfg.maxX = def.maxX
	}
	if cfg.jobBodyLimit <= 0 {
		cfg.jobBodyLimit = def.jobBodyLimit
	}
	s := &server{eng: eng, defCfg: cfg.defCfg, maxX: cfg.maxX, maxPairs: cfg.maxPairs,
		bodyLimit: cfg.bodyLimit, jobBodyLimit: cfg.jobBodyLimit, keys: cfg.apiKeys,
		dataDir: cfg.jobDataDir}
	// The HTTP layer registers its instruments in the engine's registry:
	// NewStages get-or-creates the engine's own stage histogram family, so
	// the traces this layer starts and the stages the engine observes land
	// in the same series.
	s.tele = eng.Telemetry()
	s.stages = telemetry.NewStages(s.tele, "logan_stage_duration_seconds",
		"Pipeline stage latency by stage (admit, coalesce_wait, partition, kernel, scatter).")
	s.m = newServerTelemetry(s.tele)
	if cfg.coalesce {
		// The result cache lives inside the coalescer: probes happen at
		// admission (hits bypass queue and quota) and fills at scatter,
		// so a cached response is always the bytes a real batch produced.
		s.cache = logan.NewResultCache(cfg.cacheEntries)
		s.coal = eng.NewCoalescer(logan.CoalescerOptions{
			MaxBatchPairs: cfg.coalescePairs,
			MaxWait:       cfg.maxWait,
			MaxPending:    cfg.maxPending,
			TargetDelay:   cfg.targetDelay,
			BulkMaxWait:   cfg.bulkMaxWait,
			Cache:         s.cache,
		})
	}
	switch {
	case cfg.jobs && cfg.cluster:
		// Router mode: this node admits and persists jobs, registered
		// logan-worker nodes execute them. The front tier's own engine
		// still serves /align.
		router, err := cluster.NewRouter(cluster.RouterOptions{
			QueuePath:    cfg.clusterQueue,
			LeaseTTL:     cfg.leaseTTL,
			WorkerTTL:    cfg.workerTTL,
			MaxRequeues:  cfg.maxRequeues,
			MaxJobs:      cfg.maxJobs,
			MaxJobBytes:  cfg.jobBodyLimit,
			PendingBytes: cfg.jobPendingBytes,
			ResultBytes:  cfg.jobResultBytes,
			Token:        cfg.clusterToken,
			Registry:     s.tele,
		})
		if err != nil {
			if s.coal != nil {
				s.coal.Close()
			}
			return nil, err
		}
		s.router = router
		s.store = router
	case cfg.jobs:
		// Jobs extend on the same engine as /align traffic. With
		// -job-coalesce their chunks additionally flow through the merge
		// queue (and shed/retry under its admission control); the default
		// is the engine-direct path for per-pair cancellation.
		var oopt logan.OverlapperOptions
		if cfg.jobCoalesce {
			if s.coal == nil {
				// main rejects this flag combination; reaching it here is
				// a programming error that must not silently downgrade to
				// the direct path.
				panic("logan-serve: jobCoalesce requires coalesce")
			}
			oopt.Coalescer = s.coal
		}
		ov, err := logan.NewOverlapper(eng, oopt)
		if err != nil {
			panic(err) // unreachable: eng is non-nil
		}
		s.store = newJobStore(ov, s.tele, cfg.jobWorkers, cfg.maxJobs, cfg.jobPendingBytes, cfg.jobResultBytes)
	}
	if cfg.maps {
		// The mapper extends on the shared engine; with coalescing on its
		// batches ride the same QoS lanes as /align and /jobs traffic.
		mapper, err := logan.NewMapper(eng, logan.MapperOptions{Coalescer: s.coal})
		if err != nil {
			panic(err) // unreachable: eng is non-nil
		}
		s.maps = &mapTier{mapper: mapper}
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /align", s.handleAlign)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /readyz", s.handleReady)
	mux.HandleFunc("GET /statz", s.handleStatz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("POST /jobs", s.handleJobSubmit)
	mux.HandleFunc("GET /jobs/{id}", s.handleJobStatus)
	mux.HandleFunc("GET /jobs/{id}/paf", s.handleJobPAF)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleJobDelete)
	if s.maps != nil {
		mux.HandleFunc("POST /map", s.handleMap)
		mux.HandleFunc("POST /map/index", s.handleMapIndexBuild)
		mux.HandleFunc("GET /map/index", s.handleMapIndexStatus)
	}
	if s.router != nil {
		mux.Handle("/cluster/", s.router.Handler())
	}
	s.mux = mux
	// Warm the engine off the request path: the first alignment pays
	// one-time pool/device setup, and /readyz holds back load-balancer
	// traffic until it has been paid.
	go s.warmup()
	return s, nil
}

// warmup runs one trivial alignment through the engine and flips the
// readiness gate.
func (s *server) warmup() {
	pairs := []logan.Pair{{
		Query:   []byte("ACGTACGTACGTACGT"),
		Target:  []byte("ACGTACGTACGTACGT"),
		SeedLen: 8,
	}}
	s.eng.Align(context.Background(), pairs, s.defCfg)
	s.ready.Store(true)
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Close cancels live jobs, waits for their runners, then stops the
// coalescer after flushing queued requests. Call it after the HTTP server
// has stopped accepting work and before the engine closes.
func (s *server) Close() {
	if s.store != nil {
		s.store.Close()
	}
	if s.coal != nil {
		s.coal.Close()
	}
}

func (s *server) fail(w http.ResponseWriter, code int, format string, args ...any) {
	s.m.errors.Inc()
	http.Error(w, fmt.Sprintf(format, args...), code)
}

// retryAfterSeconds renders a drain-rate estimate as a Retry-After header
// value: whole seconds, rounded up, at least 1.
func retryAfterSeconds(d time.Duration) string {
	return strconv.Itoa(max(1, int(math.Ceil(d.Seconds()))))
}

// alignRetryAfter is the Retry-After advertised on a shed /align request:
// the coalescer's live queue-drain projection, or one MaxWait's worth of
// slack on the direct path.
func (s *server) alignRetryAfter() string {
	if s.coal != nil {
		return retryAfterSeconds(s.coal.RetryAfter())
	}
	return "1"
}

func (s *server) handleAlign(w http.ResponseWriter, r *http.Request) {
	s.m.requests.Inc()
	// Every /align request carries a trace: downstream layers (coalescer,
	// engine) stamp their stages onto it, and the spans come back to the
	// client in the X-Logan-Trace response header.
	tr := s.stages.StartTrace()
	ten, ok := s.tenantFor(r)
	if !ok {
		s.fail(w, http.StatusUnauthorized, "unknown API key")
		return
	}
	var req alignRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.bodyLimit))
	if err := dec.Decode(&req); err != nil {
		// A body over the wire limit surfaces as a decode error; report it
		// as 413 naming the limit, not a generic 400.
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.fail(w, http.StatusRequestEntityTooLarge,
				"request body exceeds the %d-byte limit", tooBig.Limit)
			return
		}
		s.fail(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	// Exactly one JSON document: trailing garbage after it is a client bug
	// that must not be silently accepted.
	if err := dec.Decode(&struct{}{}); !errors.Is(err, io.EOF) {
		s.fail(w, http.StatusBadRequest, "bad request: trailing data after JSON document")
		return
	}
	if len(req.Pairs) > s.maxPairs {
		s.fail(w, http.StatusRequestEntityTooLarge,
			"batch of %d pairs exceeds the %d-pair limit", len(req.Pairs), s.maxPairs)
		return
	}
	cfg, err := s.requestConfig(&req)
	if err != nil {
		// Invalid schemes are a client error, rejected before any pair
		// queues — a malformed configuration never reaches the engine.
		s.fail(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	pairs := make([]logan.Pair, len(req.Pairs))
	for i, p := range req.Pairs {
		pairs[i] = logan.Pair{
			Query:  []byte(p.Query),
			Target: []byte(p.Target),
			SeedQ:  p.SeedQ, SeedT: p.SeedT, SeedLen: p.SeedLen,
		}
	}
	// Decode + validation + pair conversion is this layer's share of the
	// admit stage; the engine's ingest adds its own admit observation.
	tr.Step(telemetry.StageAdmit)
	ctx := telemetry.WithTrace(r.Context(), tr)
	if ten != nil {
		// The tenant rides the context into the coalescer (per-tenant
		// fair-share admission, quota, shed attribution) or — on the
		// direct path — into the engine's own quota check.
		ctx = logan.WithTenant(ctx, ten)
	}

	var (
		out []logan.Alignment
		st  logan.Stats
	)
	if s.coal != nil {
		out, st, err = s.coal.Align(ctx, pairs, cfg)
	} else {
		out, st, err = s.eng.Align(ctx, pairs, cfg)
	}
	if err != nil {
		switch {
		case errors.Is(err, logan.ErrOverloaded):
			// Shed, don't queue: admission control projects the queue delay
			// past its target (or the request's own deadline). Retry-After
			// carries the live drain-rate projection, not a constant. The
			// rejection closes the trace with a shed span, and the trace
			// still ships in X-Logan-Trace so a 429'd client sees exactly
			// where admission control stopped it.
			tr.Step(telemetry.StageShed)
			s.m.shed.Inc()
			w.Header().Set("Retry-After", s.alignRetryAfter())
			w.Header().Set("X-Logan-Trace", formatTrace(tr))
			s.fail(w, http.StatusTooManyRequests, "overloaded: %v", err)
		case errors.Is(err, logan.ErrUnsupportedConfig):
			// Well-formed scheme this server's backend cannot execute
			// (affine/matrix on a pure-GPU engine).
			s.fail(w, http.StatusUnprocessableEntity, "align: %v", err)
		case errors.Is(err, logan.ErrClosed):
			s.fail(w, http.StatusServiceUnavailable, "align: %v", err)
		case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
			// The client abandoned the request mid-queue; the status is
			// for the books — nobody is left to read it.
			s.fail(w, http.StatusRequestTimeout, "align: %v", err)
		default:
			s.fail(w, http.StatusUnprocessableEntity, "align: %v", err)
		}
		return
	}
	s.m.pairs.Add(float64(st.Pairs))
	s.m.cells.Add(float64(st.Cells))

	resp := alignResponse{
		Alignments: make([]alignmentJSON, len(out)),
		Stats: statsJSON{
			Pairs: st.Pairs, Cells: st.Cells,
			WallNS: st.WallTime.Nanoseconds(), DeviceNS: st.DeviceTime.Nanoseconds(),
			GCUPS: st.GCUPS,
		},
	}
	for i, a := range out {
		resp.Alignments[i] = alignmentJSON{
			Score: a.Score, QBegin: a.QBegin, QEnd: a.QEnd,
			TBegin: a.TBegin, TEnd: a.TEnd, Cells: a.Cells,
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Logan-Trace", formatTrace(tr))
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		s.m.writeErrors.Inc()
	}
}

// formatTrace renders a request trace as "stage=dur;stage=dur" for the
// X-Logan-Trace response header.
func formatTrace(tr *telemetry.Trace) string {
	var b strings.Builder
	for i, sp := range tr.Spans() {
		if i > 0 {
			b.WriteByte(';')
		}
		b.WriteString(sp.Stage)
		b.WriteByte('=')
		b.WriteString(sp.D.Round(time.Microsecond).String())
	}
	return b.String()
}

// handleHealth is GET /healthz: pure liveness — the process is up and
// serving HTTP. Routability belongs to /readyz; a load balancer that
// health-checks here must not expect readiness semantics.
func (s *server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, `{"status":"ok"}`)
}

// handleReady is GET /readyz: 503 until the engine's warmup alignment
// has completed and — in router mode — at least one worker is
// registered, so load balancers never route to a node that would shed
// or queue everything.
func (s *server) handleReady(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	switch {
	case !s.ready.Load():
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, `{"status":"warming"}`)
	case s.store != nil && !s.store.Ready():
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, `{"status":"no workers registered"}`)
	default:
		fmt.Fprintln(w, `{"status":"ready"}`)
	}
}

// statzJSON is the GET /statz payload: process-lifetime totals, the
// per-backend breakdown (which execution workers — CPU pool, each GPU —
// served how much of the traffic), and the coalescer's counters when
// cross-request batching is enabled. Every number is read from a single
// atomic registry snapshot — the same snapshot a concurrent /metrics
// scrape would see — so the JSON view and the Prometheus view of one
// instant agree.
type statzJSON struct {
	Requests    int64                       `json:"requests"`
	Pairs       int64                       `json:"pairs"`
	Cells       int64                       `json:"cells"`
	Errors      int64                       `json:"errors"`
	Shed        int64                       `json:"shed"`
	WriteErrors int64                       `json:"writeErrors"`
	Backends    map[string]backendStatzJSON `json:"backends"`
	Kernels     map[string]kernelStatzJSON  `json:"kernels,omitempty"`
	Coalescer   *coalescerStatzJSON         `json:"coalescer,omitempty"`
	Cache       *cacheStatzJSON             `json:"cache,omitempty"`
	Tenants     map[string]tenantStatzJSON  `json:"tenants,omitempty"`
	Jobs        *jobsStatzJSON              `json:"jobs,omitempty"`
	Map         *mapStatzJSON               `json:"map,omitempty"`
	Cluster     *clusterStatzJSON           `json:"cluster,omitempty"`
}

// clusterStatzJSON is the router-mode block of /statz: the worker fleet
// and the durable-queue counters.
type clusterStatzJSON struct {
	Workers           map[string]clusterWorkerJSON `json:"workers"`
	QueueDepth        int                          `json:"queueDepth"`
	Requeues          int64                        `json:"requeues"`
	LeaseExpired      int64                        `json:"leaseExpired"`
	StaleLeases       int64                        `json:"staleLeases"`
	WALReplayed       int64                        `json:"walReplayed"`
	IdempotentReplays int64                        `json:"idempotentReplays"`
}

// clusterWorkerJSON is one registered worker's row in /statz.
type clusterWorkerJSON struct {
	Backend     string  `json:"backend"`
	CellsPerSec float64 `json:"cellsPerSec,omitempty"`
	Leases      int     `json:"leases"`
	Completed   int64   `json:"completed"`
	Failed      int64   `json:"failed"`
	LastSeen    string  `json:"lastSeen"`
}

// clusterStatz builds the cluster block from the router's worker
// registry and the registry snapshot.
func clusterStatz(router *cluster.Router, snap *telemetry.Snapshot) *clusterStatzJSON {
	out := &clusterStatzJSON{
		Workers:           map[string]clusterWorkerJSON{},
		QueueDepth:        int(snap.Value("logan_cluster_queue_depth")),
		Requeues:          snap.Int("logan_cluster_requeues_total"),
		LeaseExpired:      snap.Int("logan_cluster_lease_expired_total"),
		StaleLeases:       snap.Int("logan_cluster_stale_lease_total"),
		WALReplayed:       snap.Int("logan_cluster_wal_replayed_total"),
		IdempotentReplays: snap.Int("logan_jobs_idempotent_replays_total"),
	}
	for _, w := range router.Workers() {
		out.Workers[w.Name] = clusterWorkerJSON{
			Backend:     w.Backend,
			CellsPerSec: w.CellsPS,
			Leases:      w.Leases,
			Completed:   w.Completed,
			Failed:      w.Failed,
			LastSeen:    w.LastSeen.UTC().Format(time.RFC3339Nano),
		}
	}
	return out
}

// cacheStatzJSON is the result-cache block of /statz: hit/miss/eviction
// totals plus the current entry count.
type cacheStatzJSON struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Entries   int   `json:"entries"`
}

// tenantStatzJSON is one tenant's slice of the traffic: totals from the
// per-tenant counter series plus the live queued-pairs gauge. The map
// only lists tenants that have sent traffic (the instruments register on
// first sight).
type tenantStatzJSON struct {
	Requests    int64 `json:"requests"`
	Pairs       int64 `json:"pairs"`
	Shed        int64 `json:"shed"`
	CacheHits   int64 `json:"cacheHits"`
	QueuedPairs int   `json:"queuedPairs"`
	RunningJobs int   `json:"runningJobs,omitempty"`
}

type backendStatzJSON struct {
	Pairs  int64 `json:"pairs"`
	Cells  int64 `json:"cells"`
	TimeNS int64 `json:"timeNs"`
}

// kernelStatzJSON is the per-extension-kernel-variant slice of the
// traffic: how many pairs and DP cells ran on the scalar kernel, the
// vector kernel, and the (simulated) GPU kernel.
type kernelStatzJSON struct {
	Pairs int64 `json:"pairs"`
	Cells int64 `json:"cells"`
}

// coalescerStatzJSON mirrors logan.CoalescerMetrics on the wire, plus the
// per-reason shed breakdown the adaptive admission controller produces.
type coalescerStatzJSON struct {
	Enqueued        int64   `json:"enqueued"`
	Shed            int64   `json:"shed"`
	ShedBudget      int64   `json:"shedBudget"`
	ShedDelay       int64   `json:"shedDelay"`
	ShedDeadline    int64   `json:"shedDeadline"`
	ShedQuota       int64   `json:"shedQuota"`
	Direct          int64   `json:"direct"`
	MergedBatches   int64   `json:"mergedBatches"`
	SizeFlushes     int64   `json:"sizeFlushes"`
	DeadlineFlushes int64   `json:"deadlineFlushes"`
	DrainFlushes    int64   `json:"drainFlushes"`
	MergedPairs     int64   `json:"mergedPairs"`
	MergedRequests  int64   `json:"mergedRequests"`
	MaxMergedPairs  int64   `json:"maxMergedPairs"`
	WaitNS          int64   `json:"waitNs"`
	DrainPairsPerS  float64 `json:"drainPairsPerSec"`
	ProjectedDelayS float64 `json:"projectedDelaySec"`
	QueuedRequests  int     `json:"queuedRequests"`
	QueuedPairs     int     `json:"queuedPairs"`
	// QueuedLanes counts distinct (tenant, class, config) scheduling
	// lanes; the JSON name keeps the pre-lane "queuedConfigs" wire name.
	QueuedLanes int `json:"queuedConfigs"`
}

func (s *server) handleStatz(w http.ResponseWriter, _ *http.Request) {
	snap := s.tele.Snapshot()
	out := statzJSON{
		Requests:    snap.Int("logan_http_requests_total"),
		Pairs:       snap.Int("logan_http_pairs_total"),
		Cells:       snap.Int("logan_http_cells_total"),
		Errors:      snap.Int("logan_http_errors_total"),
		Shed:        snap.Int("logan_http_shed_total"),
		WriteErrors: snap.Int("logan_http_write_errors_total"),
		Backends:    backendStatz(snap),
		Kernels:     kernelStatz(snap),
	}
	if s.coal != nil {
		out.Coalescer = coalescerStatz(snap)
	}
	if s.cache != nil {
		out.Cache = &cacheStatzJSON{
			Hits:      snap.Int("logan_cache_hits_total"),
			Misses:    snap.Int("logan_cache_misses_total"),
			Evictions: snap.Int("logan_cache_evictions_total"),
			Entries:   int(snap.Value("logan_cache_entries")),
		}
	}
	out.Tenants = tenantStatz(snap)
	if s.store != nil {
		out.Jobs = jobsStatz(snap)
	}
	if s.maps != nil {
		out.Map = &mapStatzJSON{
			Reads:      snap.Int("logan_map_reads_total"),
			Mapped:     snap.Int("logan_map_reads_mapped_total"),
			Anchors:    snap.Int("logan_map_anchors_total"),
			Chains:     snap.Int("logan_map_chains_total"),
			Extensions: snap.Int("logan_map_extensions_total"),
			Records:    snap.Int("logan_map_records_total"),
			Shed:       snap.Int("logan_map_shed_total"),
			Retries:    snap.Int("logan_map_retries_total"),
			Index:      s.maps.status(),
		}
	}
	if s.router != nil {
		out.Cluster = clusterStatz(s.router, snap)
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(out); err != nil {
		s.m.writeErrors.Inc()
	}
}

// backendStatz folds the engine's per-backend series into the /statz
// breakdown, keyed by the "backend" label.
func backendStatz(snap *telemetry.Snapshot) map[string]backendStatzJSON {
	out := map[string]backendStatzJSON{}
	for _, ss := range snap.Series("logan_backend_pairs_total") {
		name := ss.LabelValue("backend")
		b := out[name]
		b.Pairs = int64(ss.Value)
		out[name] = b
	}
	for _, ss := range snap.Series("logan_backend_cells_total") {
		name := ss.LabelValue("backend")
		b := out[name]
		b.Cells = int64(ss.Value)
		out[name] = b
	}
	for _, ss := range snap.Series("logan_backend_busy_seconds_total") {
		name := ss.LabelValue("backend")
		b := out[name]
		b.TimeNS = int64(ss.Value * 1e9)
		out[name] = b
	}
	return out
}

// kernelStatz folds the engine's per-kernel-variant series into the
// /statz breakdown, keyed by the "variant" label. Nil until the first
// batch completes (the instruments register on first sight).
func kernelStatz(snap *telemetry.Snapshot) map[string]kernelStatzJSON {
	var out map[string]kernelStatzJSON
	for _, ss := range snap.Series("logan_kernel_pairs_total") {
		if out == nil {
			out = map[string]kernelStatzJSON{}
		}
		name := ss.LabelValue("variant")
		k := out[name]
		k.Pairs = int64(ss.Value)
		out[name] = k
	}
	for _, ss := range snap.Series("logan_kernel_cells_total") {
		if out == nil {
			out = map[string]kernelStatzJSON{}
		}
		name := ss.LabelValue("variant")
		k := out[name]
		k.Cells = int64(ss.Value)
		out[name] = k
	}
	return out
}

// tenantStatz folds the per-tenant counter series and gauges into the
// /statz tenant breakdown, keyed by the "tenant" label. Nil until the
// first attributed request (the instruments register on first sight).
func tenantStatz(snap *telemetry.Snapshot) map[string]tenantStatzJSON {
	var out map[string]tenantStatzJSON
	fold := func(metric string, set func(*tenantStatzJSON, float64)) {
		for _, ss := range snap.Series(metric) {
			name := ss.LabelValue("tenant")
			if name == "" {
				continue
			}
			if out == nil {
				out = map[string]tenantStatzJSON{}
			}
			t := out[name]
			set(&t, ss.Value)
			out[name] = t
		}
	}
	fold("logan_tenant_requests_total", func(t *tenantStatzJSON, v float64) { t.Requests = int64(v) })
	fold("logan_tenant_pairs_total", func(t *tenantStatzJSON, v float64) { t.Pairs = int64(v) })
	fold("logan_tenant_shed_total", func(t *tenantStatzJSON, v float64) { t.Shed = int64(v) })
	fold("logan_tenant_cache_hits_total", func(t *tenantStatzJSON, v float64) { t.CacheHits = int64(v) })
	fold("logan_tenant_queued_pairs", func(t *tenantStatzJSON, v float64) { t.QueuedPairs = int(v) })
	fold("logan_tenant_running_jobs", func(t *tenantStatzJSON, v float64) { t.RunningJobs = int(v) })
	return out
}

// coalescerStatz builds the coalescer block from the same snapshot.
func coalescerStatz(snap *telemetry.Snapshot) *coalescerStatzJSON {
	shedBudget := snap.Int("logan_coalescer_shed_total", telemetry.L("reason", "budget"))
	shedDelay := snap.Int("logan_coalescer_shed_total", telemetry.L("reason", "delay"))
	shedDeadline := snap.Int("logan_coalescer_shed_total", telemetry.L("reason", "deadline"))
	shedQuota := snap.Int("logan_coalescer_shed_total", telemetry.L("reason", "quota"))
	sizeFlushes := snap.Int("logan_coalescer_merged_batches_total", telemetry.L("trigger", "size"))
	deadlineFlushes := snap.Int("logan_coalescer_merged_batches_total", telemetry.L("trigger", "deadline"))
	drainFlushes := snap.Int("logan_coalescer_merged_batches_total", telemetry.L("trigger", "drain"))
	return &coalescerStatzJSON{
		Enqueued:        snap.Int("logan_coalescer_enqueued_total"),
		Shed:            shedBudget + shedDelay + shedDeadline + shedQuota,
		ShedBudget:      shedBudget,
		ShedDelay:       shedDelay,
		ShedDeadline:    shedDeadline,
		ShedQuota:       shedQuota,
		Direct:          snap.Int("logan_coalescer_direct_total"),
		MergedBatches:   sizeFlushes + deadlineFlushes + drainFlushes,
		SizeFlushes:     sizeFlushes,
		DeadlineFlushes: deadlineFlushes,
		DrainFlushes:    drainFlushes,
		MergedPairs:     snap.Int("logan_coalescer_merged_pairs_total"),
		MergedRequests:  snap.Int("logan_coalescer_merged_requests_total"),
		MaxMergedPairs:  snap.Int("logan_coalescer_max_merged_pairs"),
		WaitNS:          int64(snap.Value("logan_coalescer_queue_wait_seconds_total") * 1e9),
		DrainPairsPerS:  snap.Value("logan_coalescer_drain_pairs_per_second"),
		ProjectedDelayS: snap.Value("logan_coalescer_projected_delay_seconds"),
		QueuedRequests:  int(snap.Value("logan_coalescer_queued_requests")),
		QueuedPairs:     int(snap.Value("logan_coalescer_queued_pairs")),
		QueuedLanes:     int(snap.Value("logan_coalescer_queued_configs")),
	}
}

// handleMetrics serves the whole registry in Prometheus text exposition
// format (version 0.0.4): one atomic snapshot, the same numbers a
// concurrent /statz request would report. In router mode the scrape is
// the cluster rollup: every live worker's heartbeat-pushed series are
// merged in under a worker="<name>" label, so one scrape of the router
// covers the fleet's backend/kernel/tenant breakdowns.
func (s *server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.m.requests.Inc()
	snap := s.tele.Snapshot()
	if s.router != nil {
		snap = cluster.MergeSnapshots(snap, s.router.WorkerSnapshots())
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := snap.WriteText(w); err != nil {
		s.m.writeErrors.Inc()
	}
}
