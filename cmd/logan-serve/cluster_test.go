package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"logan"
	"logan/internal/cluster"
)

// clusterTestServer boots a router-mode serve stack with short lease
// TTLs (fast failure detection in tests) and the durable queue at
// queuePath.
func clusterTestServer(t *testing.T, queuePath string, mut func(*serveConfig)) (*httptest.Server, *server, func()) {
	t.Helper()
	eng, err := logan.NewAligner(logan.EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := defaultServeConfig()
	cfg.maxWait = time.Millisecond
	cfg.cluster = true
	cfg.clusterQueue = queuePath
	cfg.leaseTTL = 200 * time.Millisecond
	if mut != nil {
		mut(&cfg)
	}
	s, err := newServer(eng, cfg)
	if err != nil {
		eng.Close()
		t.Fatal(err)
	}
	srv := httptest.NewServer(s)
	stop := func() {
		s.Close()
		srv.Close()
		eng.Close()
	}
	t.Cleanup(stop)
	return srv, s, stop
}

// startWorker builds a logan-worker-equivalent in-process: its own
// engine and overlapper, registered against the router, serving until
// the returned stop function is called (graceful) or Kill (abrupt).
func startWorker(t *testing.T, routerURL, name string) (*cluster.Worker, func()) {
	t.Helper()
	eng, err := logan.NewAligner(logan.EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ov, err := logan.NewOverlapper(eng, logan.OverlapperOptions{})
	if err != nil {
		eng.Close()
		t.Fatal(err)
	}
	w, err := cluster.NewWorker(cluster.WorkerOptions{
		RouterURL:  routerURL,
		Name:       name,
		Overlapper: ov,
		Backend:    "cpu",
		Registry:   eng.Telemetry(),
		Logf:       t.Logf,
	})
	if err != nil {
		eng.Close()
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := w.Run(ctx); err != nil {
			t.Errorf("worker %s: %v", name, err)
		}
	}()
	var once sync.Once
	stop := func() {
		once.Do(func() {
			cancel()
			wg.Wait()
			eng.Close()
		})
	}
	t.Cleanup(stop)
	return w, stop
}

// offlinePAF runs the reference pipeline (the cmd/bella path) on fasta
// and returns the PAF bytes every cluster execution must reproduce.
func offlinePAF(t *testing.T, fasta []byte, cfg logan.OverlapConfig) []byte {
	t.Helper()
	eng, err := logan.NewAligner(logan.EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	ov, _ := logan.NewOverlapper(eng, logan.OverlapperOptions{})
	res, err := ov.RunFasta(context.Background(), bytes.NewReader(fasta), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := logan.WritePAF(&buf, res.Records); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("offline reference produced no overlaps; test set too small")
	}
	return buf.Bytes()
}

// getPAF fetches the finished job's PAF body.
func getPAF(t *testing.T, url, id string) []byte {
	t.Helper()
	resp, err := http.Get(url + "/jobs/" + id + "/paf")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET paf: status %d: %s", resp.StatusCode, body)
	}
	return body
}

// TestClusterWorkerDeathRetry is the scale-out acceptance path: two
// workers serve a router, the one executing the job is killed without
// warning (no fail report, no release — pure lease expiry), and the
// survivor completes the job with output byte-identical to the offline
// single-node pipeline.
func TestClusterWorkerDeathRetry(t *testing.T) {
	fasta := jobsTestFasta(t, 21, 50_000)
	refCfg := logan.DefaultOverlapConfig(5, 0.12, 500)
	refCfg.MinOverlap = 400
	want := offlinePAF(t, fasta, refCfg)

	srv, _, _ := clusterTestServer(t, filepath.Join(t.TempDir(), "queue.wal"), nil)
	w1, _ := startWorker(t, srv.URL, "w1")
	w2, _ := startWorker(t, srv.URL, "w2")
	waitReady(t, srv.URL)

	// x=500 keeps the job running long enough to observe and kill its
	// executing worker.
	id := postJob(t, srv.URL, fasta, "?x=500&minOverlap=400&coverage=5&errorRate=0.12")

	// Wait until a worker holds the lease, then kill that worker.
	var victim string
	deadline := time.Now().Add(30 * time.Second)
	for {
		st, code := getStatus(t, srv.URL, id)
		if code != http.StatusOK {
			t.Fatalf("GET /jobs/%s: status %d", id, code)
		}
		if st.State == string(jobRunning) && st.Worker != "" {
			victim = st.Worker
			break
		}
		if st.State != string(jobQueued) {
			t.Fatalf("job %s before any kill: %s (%s)", id, st.State, st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started running")
		}
		time.Sleep(2 * time.Millisecond)
	}
	var survivor string
	switch victim {
	case "w1":
		w1.Kill()
		survivor = "w2"
	case "w2":
		w2.Kill()
		survivor = "w1"
	default:
		t.Fatalf("job leased by unknown worker %q", victim)
	}

	st := waitJob(t, srv.URL, id, 60*time.Second)
	if st.State != string(jobDone) {
		t.Fatalf("job finished %s: %s", st.State, st.Error)
	}
	if st.Requeues != 1 {
		t.Errorf("job requeued %d times, want exactly 1", st.Requeues)
	}
	if st.Worker != survivor {
		t.Errorf("job completed by %q, want survivor %q", st.Worker, survivor)
	}
	if got := getPAF(t, srv.URL, id); !bytes.Equal(got, want) {
		t.Errorf("cluster PAF diverges from the offline pipeline (%d vs %d bytes)", len(got), len(want))
	}

	// The /statz cluster block reflects the death: the requeue counted,
	// the survivor is registered with a completion.
	var stz statzJSON
	resp, err := http.Get(srv.URL + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	err = json.NewDecoder(resp.Body).Decode(&stz)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if stz.Cluster == nil {
		t.Fatal("router-mode /statz has no cluster block")
	}
	if stz.Cluster.Requeues < 1 || stz.Cluster.LeaseExpired < 1 {
		t.Errorf("cluster statz counted %d requeues / %d expiries, want >= 1 each",
			stz.Cluster.Requeues, stz.Cluster.LeaseExpired)
	}
	ws, ok := stz.Cluster.Workers[survivor]
	if !ok || ws.Completed < 1 {
		t.Errorf("cluster statz workers %+v: want %s with >= 1 completion", stz.Cluster.Workers, survivor)
	}
}

// TestClusterWALReplay: jobs accepted before a router crash survive the
// restart — the WAL replays them as queued and a worker attached to the
// new incarnation completes them.
func TestClusterWALReplay(t *testing.T) {
	fasta := jobsTestFasta(t, 22, 30_000)
	refCfg := logan.DefaultOverlapConfig(5, 0.12, 20)
	refCfg.MinOverlap = 400
	want := offlinePAF(t, fasta, refCfg)

	queue := filepath.Join(t.TempDir(), "queue.wal")
	srv1, _, stop1 := clusterTestServer(t, queue, nil)
	id := postJob(t, srv1.URL, fasta, "?x=20&minOverlap=400&coverage=5&errorRate=0.12")
	stop1() // no worker ever saw the job; only the WAL remembers it

	srv2, _, _ := clusterTestServer(t, queue, nil)
	st, code := getStatus(t, srv2.URL, id)
	if code != http.StatusOK {
		t.Fatalf("job %s lost across restart: status %d", id, code)
	}
	if st.State != string(jobQueued) {
		t.Fatalf("replayed job state %s, want queued", st.State)
	}

	startWorker(t, srv2.URL, "w1")
	fin := waitJob(t, srv2.URL, id, 60*time.Second)
	if fin.State != string(jobDone) {
		t.Fatalf("replayed job finished %s: %s", fin.State, fin.Error)
	}
	if got := getPAF(t, srv2.URL, id); !bytes.Equal(got, want) {
		t.Errorf("post-replay PAF diverges from the offline pipeline (%d vs %d bytes)", len(got), len(want))
	}
}

// TestClusterReadyz: in router mode readiness requires both the local
// engine warm-up and at least one registered worker; /healthz stays 200
// throughout (pure liveness).
func TestClusterReadyz(t *testing.T) {
	srv, _, _ := clusterTestServer(t, filepath.Join(t.TempDir(), "queue.wal"), nil)

	get := func(path string) int {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := get("/healthz"); code != http.StatusOK {
		t.Errorf("healthz before workers: %d, want 200", code)
	}
	// No worker yet: readiness must be refused even once warm. Poll
	// briefly to let the warm-up finish — the answer must stay 503.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if code := get("/readyz"); code != http.StatusServiceUnavailable {
			t.Fatalf("readyz with no workers: %d, want 503", code)
		}
		time.Sleep(20 * time.Millisecond)
	}

	startWorker(t, srv.URL, "w1")
	waitReady(t, srv.URL)
	if code := get("/healthz"); code != http.StatusOK {
		t.Errorf("healthz after workers: %d, want 200", code)
	}
}

// TestClusterIdempotencyKey: an Idempotency-Key retry maps onto the
// original job over HTTP — same ID, X-Logan-Replayed: true, one
// execution.
func TestClusterIdempotencyKey(t *testing.T) {
	fasta := jobsTestFasta(t, 23, 30_000)
	srv, _, _ := clusterTestServer(t, filepath.Join(t.TempDir(), "queue.wal"), nil)
	startWorker(t, srv.URL, "w1")

	post := func(key string) (jobStatusJSON, *http.Response) {
		req, err := http.NewRequest(http.MethodPost,
			srv.URL+"/jobs?x=20&minOverlap=400&coverage=5&errorRate=0.12", bytes.NewReader(fasta))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/x-fasta")
		req.Header.Set("Idempotency-Key", key)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("POST /jobs: status %d: %s", resp.StatusCode, body)
		}
		var st jobStatusJSON
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatalf("POST /jobs response %q: %v", body, err)
		}
		return st, resp
	}

	first, resp := post("retry-abc")
	if resp.Header.Get("X-Logan-Replayed") != "" {
		t.Error("first submission marked replayed")
	}
	second, resp := post("retry-abc")
	if second.ID != first.ID {
		t.Errorf("retry created a new job %s, want original %s", second.ID, first.ID)
	}
	if resp.Header.Get("X-Logan-Replayed") != "true" {
		t.Error("retry response missing X-Logan-Replayed: true")
	}
	other, _ := post("retry-def")
	if other.ID == first.ID {
		t.Error("distinct Idempotency-Key mapped onto the same job")
	}

	if st := waitJob(t, srv.URL, first.ID, 60*time.Second); st.State != string(jobDone) {
		t.Fatalf("job finished %s: %s", st.State, st.Error)
	}
	waitJob(t, srv.URL, other.ID, 60*time.Second)
}

// TestClusterMetricsRollup: the router's /metrics scrape re-exports
// every live worker's series under worker="<name>" labels — one scrape
// covers the fleet.
func TestClusterMetricsRollup(t *testing.T) {
	srv, _, _ := clusterTestServer(t, filepath.Join(t.TempDir(), "queue.wal"), nil)
	startWorker(t, srv.URL, "w1")
	startWorker(t, srv.URL, "w2")

	// Worker snapshots arrive with heartbeats; poll until both appear.
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(srv.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /metrics: status %d", resp.StatusCode)
		}
		text := string(body)
		if strings.Contains(text, `worker="w1"`) && strings.Contains(text, `worker="w2"`) {
			// The local series stay unlabeled: the router's own process
			// metrics must not acquire a worker label.
			if !strings.Contains(text, "logan_http_requests_total ") {
				t.Error("router's own unlabeled series missing from the rollup")
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("rollup never showed both workers; last scrape:\n%.2000s", text)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
