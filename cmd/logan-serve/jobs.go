package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"logan"
	"logan/internal/cluster"
	"logan/internal/telemetry"
)

// jobState is the lifecycle of one overlap job:
//
//	queued -> running -> done | failed
//	   \--------\--------> canceled (DELETE)
type jobState string

const (
	jobQueued   jobState = "queued"
	jobRunning  jobState = "running"
	jobDone     jobState = "done"
	jobFailed   jobState = "failed"
	jobCanceled jobState = "canceled"
)

// terminal reports whether the state can never change again.
func (s jobState) terminal() bool {
	return s == jobDone || s == jobFailed || s == jobCanceled
}

// jobProgress mirrors logan.OverlapProgress with atomics, so the runner
// goroutine updates it lock-free while status requests snapshot it.
type jobProgress struct {
	stage                             atomic.Value // logan.OverlapStage
	readsParsed, reliableKmers        atomic.Int64
	candidatePairs, extDone, extTotal atomic.Int64
	overlaps                          atomic.Int64
	shed, retries                     atomic.Int64
}

// observe folds one progress snapshot into the counters.
func (p *jobProgress) observe(u logan.OverlapProgress) {
	p.stage.Store(u.Stage)
	p.readsParsed.Store(int64(u.ReadsParsed))
	p.reliableKmers.Store(int64(u.ReliableKmers))
	p.candidatePairs.Store(int64(u.CandidatePairs))
	p.extDone.Store(int64(u.ExtensionsDone))
	p.extTotal.Store(int64(u.ExtensionsTotal))
	p.overlaps.Store(int64(u.Overlaps))
	p.shed.Store(u.Shed)
	p.retries.Store(u.Retries)
}

// job is one submitted overlap run.
type job struct {
	id        string
	idemKey   string // client Idempotency-Key, "" when absent
	createdAt time.Time
	cancel    context.CancelFunc
	progress  jobProgress
	// tenant is the submitting principal (nil on an open server). It
	// rides the runner's context so coalesced extension chunks are
	// admission-controlled and attributed under the submitter, and it
	// keys the per-tenant running-jobs gauge.
	tenant *logan.Tenant

	mu         sync.Mutex
	state      jobState
	err        string
	startedAt  time.Time
	finishedAt time.Time
	paf        []byte // serialized PAF, set when state == jobDone
	overlaps   int
	reads      int
	cells      int64
	// removed marks a job taken out of the store (DELETE or eviction)
	// whose runner may still be finishing: finish must not retain the
	// PAF or count it against the result budget — nobody can fetch it
	// and nothing would ever subtract it.
	removed bool
}

// jobTelemetry are the job subsystem's instruments, registered in the
// shared registry so /metrics and /statz read the same series.
type jobTelemetry struct {
	submitted *telemetry.Counter
	completed *telemetry.Counter
	failed    *telemetry.Counter
	// canceled counts DELETEd jobs; rejected counts submissions shed by
	// admission control (HTTP 429: store full of live jobs or upload byte
	// budget exhausted).
	canceled *telemetry.Counter
	rejected *telemetry.Counter
	// pafBytes counts result bytes produced by completed jobs.
	pafBytes *telemetry.Counter
	// avgDuration is the EWMA wall time of finished jobs — the drain-rate
	// estimate behind the Retry-After header on shed submissions.
	avgDuration *telemetry.Gauge
}

func newJobTelemetry(reg *telemetry.Registry) jobTelemetry {
	return jobTelemetry{
		submitted:   reg.Counter("logan_jobs_submitted_total", "Overlap jobs accepted by POST /jobs."),
		completed:   reg.Counter("logan_jobs_completed_total", "Overlap jobs that finished successfully."),
		failed:      reg.Counter("logan_jobs_failed_total", "Overlap jobs that finished with an error."),
		canceled:    reg.Counter("logan_jobs_canceled_total", "Overlap jobs canceled by DELETE or shutdown."),
		rejected:    reg.Counter("logan_jobs_rejected_total", "Job submissions shed by admission control (HTTP 429)."),
		pafBytes:    reg.Counter("logan_jobs_paf_bytes_total", "Serialized PAF bytes produced by completed jobs."),
		avgDuration: reg.Gauge("logan_jobs_duration_seconds_avg", "EWMA wall time of finished jobs (the Retry-After drain estimate)."),
	}
}

// jobStore is the bounded in-process registry behind the /jobs API: at
// most maxJobs jobs are retained (terminal jobs are evicted oldest-first
// to make room; a store full of live jobs sheds new submissions), and at
// most workers jobs run concurrently — the rest wait in "queued".
type jobStore struct {
	ov      *logan.Overlapper
	maxJobs int
	workers int
	sem     chan struct{} // worker slots
	baseCtx context.Context
	stopAll context.CancelFunc
	wg      sync.WaitGroup
	t       jobTelemetry
	// byteBudget bounds the FASTA bytes buffered by upload jobs that are
	// still ingesting: admission counts jobs AND bytes, so a client
	// cannot pin maxJobs × bodyLimit of heap behind two worker slots.
	// bufferedBytes is the current reservation, released once the job's
	// ingestion stage completes (the buffer is dead weight from then on)
	// or its runner returns, whichever comes first.
	byteBudget    int64
	bufferedBytes atomic.Int64
	// resultBudget bounds the aggregate serialized-PAF bytes retained by
	// terminal jobs (resultBytes is the current total): PAF size is
	// unrelated to input size — dense overlap sets are quadratic — so
	// results need their own budget, enforced by evicting the oldest
	// terminal jobs.
	resultBudget int64
	resultBytes  atomic.Int64

	// reg backs the lazily registered per-tenant running-jobs gauges;
	// tenRunning holds the live counters behind them (tenMu guards the
	// map, the counters themselves are atomic).
	reg        *telemetry.Registry
	tenMu      sync.Mutex
	tenRunning map[string]*atomic.Int64

	mu    sync.Mutex
	jobs  map[string]*job
	order []string // insertion order, for eviction scans
	// idem maps client Idempotency-Keys onto retained job IDs, so a
	// retried POST lands on the original job instead of double-running.
	idem map[string]string
	// idemHits counts submissions deduplicated onto an existing job.
	idemHits *telemetry.Counter
}

// runningGauge returns the tenant's running-jobs counter, registering
// the logan_tenant_running_jobs{tenant=...} gauge on first sight.
func (st *jobStore) runningGauge(name string) *atomic.Int64 {
	st.tenMu.Lock()
	defer st.tenMu.Unlock()
	if c, ok := st.tenRunning[name]; ok {
		return c
	}
	c := new(atomic.Int64)
	st.tenRunning[name] = c
	st.reg.GaugeFunc("logan_tenant_running_jobs", "Overlap jobs currently executing, by tenant.",
		func() float64 { return float64(c.Load()) }, telemetry.L("tenant", name))
	return c
}

// newJobStore builds a store running jobs on the given overlapper,
// registering its instruments (and queued/running gauge funcs) in reg.
func newJobStore(ov *logan.Overlapper, reg *telemetry.Registry, workers, maxJobs int, byteBudget, resultBudget int64) *jobStore {
	if workers <= 0 {
		workers = 2
	}
	if maxJobs <= 0 {
		maxJobs = 64
	}
	if byteBudget <= 0 {
		byteBudget = 256 << 20
	}
	if resultBudget <= 0 {
		resultBudget = 256 << 20
	}
	ctx, cancel := context.WithCancel(context.Background())
	st := &jobStore{
		ov: ov, maxJobs: maxJobs, workers: workers,
		sem:     make(chan struct{}, workers),
		baseCtx: ctx, stopAll: cancel,
		t:          newJobTelemetry(reg),
		byteBudget: byteBudget, resultBudget: resultBudget,
		reg:        reg,
		tenRunning: make(map[string]*atomic.Int64),
		jobs:       make(map[string]*job),
		idem:       make(map[string]string),
		idemHits:   reg.Counter("logan_jobs_idempotent_replays_total", "Submissions deduplicated onto an existing job by Idempotency-Key."),
	}
	reg.GaugeFunc("logan_jobs_queued", "Jobs waiting for a worker slot.", func() float64 {
		q, _ := st.counts()
		return float64(q)
	})
	reg.GaugeFunc("logan_jobs_running", "Jobs currently executing.", func() float64 {
		_, r := st.counts()
		return float64(r)
	})
	reg.GaugeFunc("logan_jobs_buffered_bytes", "FASTA bytes buffered by live upload jobs.", func() float64 {
		return float64(st.bufferedBytes.Load())
	})
	reg.GaugeFunc("logan_jobs_result_bytes", "Serialized PAF bytes retained by finished jobs.", func() float64 {
		return float64(st.resultBytes.Load())
	})
	return st
}

// jobDurationAlpha is the EWMA weight for the finished-job wall-time
// estimate behind Retry-After.
const jobDurationAlpha = 0.3

// RetryAfter projects when a worker slot should free up: the average job
// duration spread over the queue depth ahead of a new submission, floored
// at one second and capped at a minute (an uncalibrated store — no job
// has finished yet — advertises the floor). Implements cluster.JobStore.
func (st *jobStore) RetryAfter() time.Duration {
	avg := st.t.avgDuration.Value()
	if avg <= 0 {
		return time.Second
	}
	queued, running := st.counts()
	d := time.Duration(avg * float64(queued+running+1) / float64(st.workers) * float64(time.Second))
	return min(max(d, time.Second), time.Minute)
}

// Close cancels every live job and waits for the runners to drain. Call
// it before closing the coalescer/engine the overlapper extends on.
func (st *jobStore) Close() {
	st.stopAll()
	st.wg.Wait()
}

// add registers a new job, evicting the oldest terminal job when the
// store is full (failing with cluster.ErrStoreFull when every retained
// job is still live). When the job carries an idempotency key that is
// already mapped, add registers nothing and returns the existing job —
// the check runs under the store lock, so two concurrent retries with
// the same key still collapse onto one job.
func (st *jobStore) add(j *job) (*job, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if j.idemKey != "" {
		if id, ok := st.idem[j.idemKey]; ok {
			return st.jobs[id], nil
		}
	}
	if len(st.jobs) >= st.maxJobs {
		evicted := false
		for i, id := range st.order {
			old := st.jobs[id]
			old.mu.Lock()
			dead := old.state.terminal()
			paf := len(old.paf)
			if dead {
				old.removed = true
			}
			old.mu.Unlock()
			if dead {
				st.forgetLocked(i, id, old, paf)
				evicted = true
				break
			}
		}
		if !evicted {
			return nil, cluster.ErrStoreFull
		}
	}
	st.jobs[j.id] = j
	st.order = append(st.order, j.id)
	if j.idemKey != "" {
		st.idem[j.idemKey] = j.id
	}
	return nil, nil
}

// forgetLocked removes the job at order index i from every map and
// releases its retained result bytes. Caller holds st.mu.
func (st *jobStore) forgetLocked(i int, id string, j *job, paf int) {
	delete(st.jobs, id)
	st.order = append(st.order[:i], st.order[i+1:]...)
	if j.idemKey != "" {
		delete(st.idem, j.idemKey)
	}
	if paf > 0 {
		st.resultBytes.Add(int64(-paf))
	}
}

// trimResults evicts the oldest terminal jobs (sparing keep, the one
// that just finished) until retained PAF bytes fit the result budget: a
// dense overlap set can produce results far larger than its input, so
// the output side needs admission control of its own.
func (st *jobStore) trimResults(keep string) {
	if st.resultBytes.Load() <= st.resultBudget {
		return
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	for i := 0; i < len(st.order) && st.resultBytes.Load() > st.resultBudget; {
		id := st.order[i]
		if id == keep {
			i++
			continue
		}
		j := st.jobs[id]
		j.mu.Lock()
		dead := j.state.terminal()
		paf := len(j.paf)
		if dead && paf > 0 {
			j.removed = true
		}
		j.mu.Unlock()
		if !dead || paf == 0 {
			i++
			continue
		}
		st.forgetLocked(i, id, j, paf)
	}
}

// get returns the job by id.
func (st *jobStore) get(id string) (*job, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	j, ok := st.jobs[id]
	return j, ok
}

// remove deletes the job from the registry; the runner goroutine (if any)
// keeps running until its context cancellation lands.
func (st *jobStore) remove(id string) (*job, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	j, ok := st.jobs[id]
	if !ok {
		return nil, false
	}
	j.mu.Lock()
	paf := len(j.paf)
	j.removed = true // a still-running finish must not account its result
	j.mu.Unlock()
	for i, oid := range st.order {
		if oid == id {
			st.forgetLocked(i, id, j, paf)
			break
		}
	}
	return j, true
}

// counts returns the live-state gauges for /statz.
func (st *jobStore) counts() (queued, running int) {
	st.mu.Lock()
	defer st.mu.Unlock()
	for _, j := range st.jobs {
		j.mu.Lock()
		switch j.state {
		case jobQueued:
			queued++
		case jobRunning:
			running++
		}
		j.mu.Unlock()
	}
	return queued, running
}

// submit registers and starts a job over the given FASTA source. The
// source is opened only once a worker slot frees up, so a deep queue does
// not hold file handles. bufSize is the source's already-buffered upload
// bytes (0 for server-side paths, which buffer nothing); the reservation
// is held until the job's runner returns and its buffer is unreachable.
// A submission whose idemKey matches a retained job returns that job
// with replayed=true instead of starting a second run.
func (st *jobStore) submit(ten *logan.Tenant, cfg logan.OverlapConfig, src func() (io.ReadCloser, error), bufSize int64, idemKey string) (j *job, replayed bool, err error) {
	if bufSize > 0 && st.bufferedBytes.Add(bufSize) > st.byteBudget {
		st.bufferedBytes.Add(-bufSize)
		return nil, false, cluster.ErrBusy
	}
	ctx, cancel := context.WithCancel(st.baseCtx)
	if ten != nil {
		// The submitter rides the runner's context: with -job-coalesce the
		// job's extension chunks hit the coalescer's per-tenant admission
		// (bulk class) under this identity instead of anonymously.
		ctx = logan.WithTenant(ctx, ten)
	}
	j = &job{id: cluster.NewID(), idemKey: idemKey, createdAt: time.Now(), state: jobQueued, cancel: cancel, tenant: ten}
	j.progress.stage.Store(logan.OverlapStage("queued"))
	cfg.OnProgress = j.progress.observe
	existing, err := st.add(j)
	if existing != nil || err != nil {
		cancel()
		st.bufferedBytes.Add(-bufSize)
		if existing != nil {
			st.idemHits.Inc()
			return existing, true, nil
		}
		return nil, false, err
	}
	st.t.submitted.Inc()
	st.wg.Add(1)
	go st.run(ctx, j, cfg, src, bufSize)
	return j, false, nil
}

// clusterStatus snapshots the job in the store-independent wire shape.
func (j *job) clusterStatus() cluster.JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	stage, _ := j.progress.stage.Load().(logan.OverlapStage)
	return cluster.JobStatus{
		ID:    j.id,
		State: string(j.state),
		Error: j.err,
		Progress: cluster.Progress{
			Stage:           string(stage),
			ReadsParsed:     j.progress.readsParsed.Load(),
			ReliableKmers:   j.progress.reliableKmers.Load(),
			CandidatePairs:  j.progress.candidatePairs.Load(),
			ExtensionsDone:  j.progress.extDone.Load(),
			ExtensionsTotal: j.progress.extTotal.Load(),
			Overlaps:        j.progress.overlaps.Load(),
			Shed:            j.progress.shed.Load(),
			Retries:         j.progress.retries.Load(),
		},
		Overlaps: j.overlaps,
		Reads:    j.reads,
		Cells:    j.cells,
		PAFBytes: len(j.paf),
		Created:  j.createdAt,
		Started:  j.startedAt,
		Finished: j.finishedAt,
	}
}

// Submit implements cluster.JobStore for the single-node store.
func (st *jobStore) Submit(sub cluster.Submission) (cluster.JobStatus, bool, error) {
	j, replayed, err := st.submit(sub.Tenant, sub.Config, sub.Open, sub.BufBytes, sub.IdempotencyKey)
	if err != nil {
		st.t.rejected.Inc()
		return cluster.JobStatus{}, false, err
	}
	return j.clusterStatus(), replayed, nil
}

// Status implements cluster.JobStore.
func (st *jobStore) Status(id string) (cluster.JobStatus, bool) {
	j, ok := st.get(id)
	if !ok {
		return cluster.JobStatus{}, false
	}
	return j.clusterStatus(), true
}

// PAF implements cluster.JobStore.
func (st *jobStore) PAF(id string) ([]byte, cluster.JobStatus, bool) {
	j, ok := st.get(id)
	if !ok {
		return nil, cluster.JobStatus{}, false
	}
	stat := j.clusterStatus()
	if stat.State != cluster.StateDone {
		return nil, stat, true
	}
	j.mu.Lock()
	paf := j.paf
	j.mu.Unlock()
	return paf, stat, true
}

// Cancel implements cluster.JobStore: abort the run if live, forget the
// job either way.
func (st *jobStore) Cancel(id string) bool {
	j, ok := st.remove(id)
	if !ok {
		return false
	}
	// Cancel the run; the runner's finish marks the job canceled (it is
	// already unreachable, but the totals must record the outcome).
	j.cancel()
	return true
}

// Ready implements cluster.JobStore: the single-node store can always
// make progress once constructed.
func (st *jobStore) Ready() bool { return true }

var _ cluster.JobStore = (*jobStore)(nil)

// run executes one job: wait for a worker slot, stream the FASTA through
// the overlapper, publish the outcome.
func (st *jobStore) run(ctx context.Context, j *job, cfg logan.OverlapConfig, src func() (io.ReadCloser, error), bufSize int64) {
	defer st.wg.Done()
	// Release the upload-byte reservation as soon as ingestion completes
	// (the first post-ingest progress update): from there the body buffer
	// is dead weight and must not count against new submissions. The
	// deferred call covers every early-exit path; progress callbacks run
	// on this goroutine, so the flag needs no lock.
	released := bufSize == 0
	release := func() {
		if !released {
			released = true
			st.bufferedBytes.Add(-bufSize)
		}
	}
	defer release()
	if !released {
		observe := cfg.OnProgress
		cfg.OnProgress = func(p logan.OverlapProgress) {
			if p.Stage != logan.StageIngest {
				release()
			}
			observe(p)
		}
	}
	defer j.cancel()
	select {
	case st.sem <- struct{}{}:
		defer func() { <-st.sem }()
	case <-ctx.Done():
		st.finish(j, nil, ctx.Err())
		return
	}
	j.mu.Lock()
	j.state = jobRunning
	j.startedAt = time.Now()
	j.mu.Unlock()
	running := st.runningGauge(tenantName(j.tenant))
	running.Add(1)
	defer running.Add(-1)

	in, err := src()
	if err != nil {
		st.finish(j, nil, err)
		return
	}
	res, err := st.ov.RunFasta(ctx, in, cfg)
	in.Close()
	st.finish(j, res, err)
	// A completed job just added its PAF bytes; shrink the retained set
	// back under the result budget (evicting oldest terminal jobs).
	st.trimResults(j.id)
}

// finish publishes a job outcome exactly once.
func (st *jobStore) finish(j *job, res *logan.OverlapResult, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.terminal() {
		return
	}
	j.finishedAt = time.Now()
	// Jobs that actually ran feed the duration EWMA behind Retry-After;
	// ones canceled while still queued would drag the estimate toward
	// zero and are skipped.
	if !j.startedAt.IsZero() {
		st.t.avgDuration.ObserveEWMA(j.finishedAt.Sub(j.startedAt).Seconds(), jobDurationAlpha)
	}
	switch {
	case err == nil:
		var buf bytes.Buffer
		if werr := logan.WritePAF(&buf, res.Records); werr != nil {
			j.state = jobFailed
			j.err = werr.Error()
			st.t.failed.Inc()
			return
		}
		j.state = jobDone
		j.overlaps = len(res.Records)
		j.reads = res.Stats.Reads
		j.cells = res.Stats.Cells
		st.t.completed.Inc()
		if j.removed {
			// The job was DELETEd (or evicted) while the run raced to the
			// finish line: nobody can fetch the result and nothing would
			// ever subtract it from the budget, so drop it.
			return
		}
		j.paf = buf.Bytes()
		st.t.pafBytes.Add(float64(len(j.paf)))
		st.resultBytes.Add(int64(len(j.paf)))
	case errors.Is(err, context.Canceled):
		j.state = jobCanceled
		j.err = err.Error()
		st.t.canceled.Inc()
	default:
		j.state = jobFailed
		j.err = err.Error()
		st.t.failed.Inc()
	}
}

// overlapConfigJSON is the wire form of a job's pipeline configuration:
// every field optional, zero values replaced by the DefaultOverlapConfig
// defaults (coverage 6, error rate 0.15, the paper's +1/-1/-1 scoring).
// The same fields are accepted as query parameters on raw-FASTA
// submissions.
type overlapConfigJSON struct {
	K          int     `json:"k"`
	Coverage   float64 `json:"coverage"`
	ErrorRate  float64 `json:"errorRate"`
	X          *int32  `json:"x"`
	MinOverlap int     `json:"minOverlap"`
	MinShared  int     `json:"minShared"`
	MaxSeeds   int     `json:"maxSeeds"`
	BinWidth   int     `json:"binWidth"`
	Delta      float64 `json:"delta"`
}

// jobRequestJSON is the application/json POST /jobs payload: a
// server-side FASTA path (relative to -job-data-dir) plus the pipeline
// configuration.
type jobRequestJSON struct {
	FastaPath string            `json:"fastaPath"`
	Config    overlapConfigJSON `json:"config"`
}

// overlapConfig resolves the wire configuration against the server's
// defaults and caps.
func (s *server) overlapConfig(req overlapConfigJSON) (logan.OverlapConfig, error) {
	cov, er := req.Coverage, req.ErrorRate
	if cov == 0 {
		cov = 6
	}
	if er == 0 {
		er = 0.15
	}
	if cov < 0 || er < 0 || er >= 1 {
		return logan.OverlapConfig{}, fmt.Errorf("coverage %g / errorRate %g out of range", cov, er)
	}
	x := s.defCfg.X
	if req.X != nil {
		x = *req.X
	}
	if x > s.maxX {
		return logan.OverlapConfig{}, fmt.Errorf("x %d exceeds the server's %d limit", x, s.maxX)
	}
	cfg := logan.DefaultOverlapConfig(cov, er, x)
	if req.K != 0 {
		cfg.K = req.K
	}
	cfg.MinOverlap = req.MinOverlap
	if req.MinShared != 0 {
		cfg.MinShared = req.MinShared
	}
	if req.MaxSeeds != 0 {
		cfg.MaxSeeds = req.MaxSeeds
	}
	if req.BinWidth != 0 {
		cfg.BinWidth = req.BinWidth
	}
	if req.Delta != 0 {
		cfg.Delta = req.Delta
	}
	if err := cfg.Validate(); err != nil {
		return logan.OverlapConfig{}, err
	}
	return cfg, nil
}

// queryOverlapConfig parses the overlapConfigJSON fields from URL query
// parameters (the raw-FASTA submission form).
func queryOverlapConfig(q url.Values) (overlapConfigJSON, error) {
	var out overlapConfigJSON
	var err error
	geti := func(key string, dst *int) {
		if v := q.Get(key); v != "" && err == nil {
			*dst, err = strconv.Atoi(v)
			if err != nil {
				err = fmt.Errorf("query parameter %s=%q: %w", key, v, err)
			}
		}
	}
	getf := func(key string, dst *float64) {
		if v := q.Get(key); v != "" && err == nil {
			*dst, err = strconv.ParseFloat(v, 64)
			if err != nil {
				err = fmt.Errorf("query parameter %s=%q: %w", key, v, err)
			}
		}
	}
	geti("k", &out.K)
	getf("coverage", &out.Coverage)
	getf("errorRate", &out.ErrorRate)
	if v := q.Get("x"); v != "" && err == nil {
		xv, perr := strconv.ParseInt(v, 10, 32)
		if perr != nil {
			err = fmt.Errorf("query parameter x=%q: %w", v, perr)
		} else {
			x32 := int32(xv)
			out.X = &x32
		}
	}
	geti("minOverlap", &out.MinOverlap)
	geti("minShared", &out.MinShared)
	geti("maxSeeds", &out.MaxSeeds)
	geti("binWidth", &out.BinWidth)
	getf("delta", &out.Delta)
	return out, err
}

// handleJobSubmit is POST /jobs. An application/json body names a
// server-side FASTA under -job-data-dir; any other content type is the
// FASTA itself (configuration via query parameters). Accepted jobs get
// 202 with the job id; a store full of live jobs sheds with 429. An
// Idempotency-Key header dedupes client retries onto the original job,
// marked by X-Logan-Replayed: true in the response.
func (s *server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	s.m.requests.Inc()
	// The submit trace only surfaces on rejection: accepted jobs run
	// asynchronously (their pipeline stages land in the job's progress),
	// but a shed submission closes its trace with a shed span so the 429
	// carries X-Logan-Trace like a shed /align does.
	tr := s.stages.StartTrace()
	if s.store == nil {
		s.fail(w, http.StatusNotFound, "job API disabled (-jobs=false)")
		return
	}
	ten, ok := s.tenantFor(r)
	if !ok {
		s.fail(w, http.StatusUnauthorized, "unknown API key")
		return
	}
	var (
		cfg     logan.OverlapConfig
		src     func() (io.ReadCloser, error)
		bufSize int64
	)
	ct, _, _ := mime.ParseMediaType(r.Header.Get("Content-Type"))
	if ct == "application/json" {
		var req jobRequestJSON
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
		if err := dec.Decode(&req); err != nil {
			s.fail(w, http.StatusBadRequest, "bad request: %v", err)
			return
		}
		if err := dec.Decode(&struct{}{}); !errors.Is(err, io.EOF) {
			s.fail(w, http.StatusBadRequest, "bad request: trailing data after JSON document")
			return
		}
		var err error
		cfg, err = s.overlapConfig(req.Config)
		if err != nil {
			s.fail(w, http.StatusBadRequest, "bad request: %v", err)
			return
		}
		path, err := s.resolveDataPath(req.FastaPath)
		if err != nil {
			s.fail(w, http.StatusBadRequest, "bad request: %v", err)
			return
		}
		src = func() (io.ReadCloser, error) { return os.Open(path) }
	} else {
		q, err := queryOverlapConfig(r.URL.Query())
		if err != nil {
			s.fail(w, http.StatusBadRequest, "bad request: %v", err)
			return
		}
		cfg, err = s.overlapConfig(q)
		if err != nil {
			s.fail(w, http.StatusBadRequest, "bad request: %v", err)
			return
		}
		// The upload is buffered at admission (bounded by -job-body-limit)
		// so the job holds bytes, not the client connection.
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.jobBodyLimit))
		if err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				s.fail(w, http.StatusRequestEntityTooLarge,
					"FASTA upload exceeds the %d-byte limit", tooBig.Limit)
				return
			}
			s.fail(w, http.StatusBadRequest, "bad request: %v", err)
			return
		}
		if len(body) == 0 {
			s.fail(w, http.StatusBadRequest, "bad request: empty FASTA body")
			return
		}
		// The source transfers ownership of the buffer on open: the
		// closure drops its reference, so once the overlapper's ingest
		// loop stops reading, nothing but a dead local pins the bytes and
		// the reservation release at end-of-ingest matches reality.
		bufSize = int64(len(body))
		src = func() (io.ReadCloser, error) {
			b := body
			body = nil
			return io.NopCloser(bytes.NewReader(b)), nil
		}
	}

	stat, replayed, err := s.store.Submit(cluster.Submission{
		Tenant: ten, Config: cfg, Open: src, BufBytes: bufSize,
		IdempotencyKey: r.Header.Get("Idempotency-Key"),
	})
	if err != nil {
		if !errors.Is(err, cluster.ErrStoreFull) && !errors.Is(err, cluster.ErrBusy) {
			s.fail(w, http.StatusBadRequest, "bad request: %v", err)
			return
		}
		s.m.shed.Inc()
		// Retry-After projects a worker slot freeing up from the measured
		// job duration EWMA and the current queue depth, not a constant.
		tr.Step(telemetry.StageShed)
		w.Header().Set("Retry-After", retryAfterSeconds(s.store.RetryAfter()))
		w.Header().Set("X-Logan-Trace", formatTrace(tr))
		s.fail(w, http.StatusTooManyRequests, "overloaded: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Location", "/jobs/"+stat.ID)
	if replayed {
		// The Idempotency-Key matched a retained job: this 202 restates
		// the original submission rather than creating a new one.
		w.Header().Set("X-Logan-Replayed", "true")
	}
	w.WriteHeader(http.StatusAccepted)
	if err := json.NewEncoder(w).Encode(statusJSON(stat)); err != nil {
		s.m.writeErrors.Inc()
	}
}

// resolveDataPath maps a client-supplied relative path onto the
// -job-data-dir sandbox, rejecting escapes. In router mode the path is
// read router-side at admission: workers receive the bytes in the spec,
// never a path.
func (s *server) resolveDataPath(p string) (string, error) {
	if s.dataDir == "" {
		return "", errors.New("server-side FASTA paths are disabled (start with -job-data-dir)")
	}
	if p == "" {
		return "", errors.New("fastaPath is required for JSON submissions")
	}
	if filepath.IsAbs(p) {
		return "", fmt.Errorf("fastaPath %q must be relative to the server's data directory", p)
	}
	clean := filepath.Clean(p)
	if clean == ".." || len(clean) >= 3 && clean[:3] == ".."+string(filepath.Separator) {
		return "", fmt.Errorf("fastaPath %q escapes the server's data directory", p)
	}
	return filepath.Join(s.dataDir, clean), nil
}

// jobProgressJSON is the progress block of GET /jobs/{id}.
type jobProgressJSON struct {
	Stage           string `json:"stage"`
	ReadsParsed     int64  `json:"readsParsed"`
	ReliableKmers   int64  `json:"reliableKmers"`
	CandidatePairs  int64  `json:"candidatePairs"`
	ExtensionsDone  int64  `json:"extensionsDone"`
	ExtensionsTotal int64  `json:"extensionsTotal"`
	Shed            int64  `json:"shed"`
	Retries         int64  `json:"retries"`
}

// jobStatusJSON is the GET /jobs/{id} payload (also returned by POST).
// Worker and Requeues only appear in router mode: which node holds (or
// held) the job's lease, and how many retries it survived.
type jobStatusJSON struct {
	ID       string           `json:"id"`
	State    string           `json:"state"`
	Error    string           `json:"error,omitempty"`
	Progress *jobProgressJSON `json:"progress,omitempty"`
	// Overlaps/Reads/Cells/PAFBytes summarize a finished job.
	Overlaps   int    `json:"overlaps,omitempty"`
	Reads      int    `json:"reads,omitempty"`
	Cells      int64  `json:"cells,omitempty"`
	PAFBytes   int    `json:"pafBytes,omitempty"`
	Worker     string `json:"worker,omitempty"`
	Requeues   int    `json:"requeues,omitempty"`
	CreatedAt  string `json:"createdAt"`
	StartedAt  string `json:"startedAt,omitempty"`
	FinishedAt string `json:"finishedAt,omitempty"`
}

// statusJSON renders a store-independent job status for the wire.
func statusJSON(st cluster.JobStatus) jobStatusJSON {
	out := jobStatusJSON{
		ID:    st.ID,
		State: st.State,
		Error: st.Error,
		Progress: &jobProgressJSON{
			Stage:           st.Progress.Stage,
			ReadsParsed:     st.Progress.ReadsParsed,
			ReliableKmers:   st.Progress.ReliableKmers,
			CandidatePairs:  st.Progress.CandidatePairs,
			ExtensionsDone:  st.Progress.ExtensionsDone,
			ExtensionsTotal: st.Progress.ExtensionsTotal,
			Shed:            st.Progress.Shed,
			Retries:         st.Progress.Retries,
		},
		Overlaps:  st.Overlaps,
		Reads:     st.Reads,
		Cells:     st.Cells,
		PAFBytes:  st.PAFBytes,
		Worker:    st.Worker,
		Requeues:  st.Requeues,
		CreatedAt: st.Created.UTC().Format(time.RFC3339Nano),
	}
	if out.Progress.Stage == "" {
		out.Progress.Stage = st.State
	}
	if !st.Started.IsZero() {
		out.StartedAt = st.Started.UTC().Format(time.RFC3339Nano)
	}
	if !st.Finished.IsZero() {
		out.FinishedAt = st.Finished.UTC().Format(time.RFC3339Nano)
	}
	return out
}

// handleJobStatus is GET /jobs/{id}.
func (s *server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	s.m.requests.Inc()
	stat, ok := s.jobLookup(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(statusJSON(stat)); err != nil {
		s.m.writeErrors.Inc()
	}
}

// handleJobPAF is GET /jobs/{id}/paf: the result stream of a finished
// job. Jobs that are not done yet answer 409 with their current state.
func (s *server) handleJobPAF(w http.ResponseWriter, r *http.Request) {
	s.m.requests.Inc()
	if s.store == nil {
		s.fail(w, http.StatusNotFound, "job API disabled (-jobs=false)")
		return
	}
	paf, stat, ok := s.store.PAF(r.PathValue("id"))
	if !ok {
		s.fail(w, http.StatusNotFound, "no such job")
		return
	}
	if stat.State != cluster.StateDone {
		msg := fmt.Sprintf("job %s is %s", stat.ID, stat.State)
		if stat.Error != "" {
			msg += ": " + stat.Error
		}
		s.fail(w, http.StatusConflict, "%s", msg)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Header().Set("Content-Length", strconv.Itoa(len(paf)))
	if _, err := w.Write(paf); err != nil {
		s.m.writeErrors.Inc()
	}
}

// handleJobDelete is DELETE /jobs/{id}: cancel the job if live, forget it
// either way. The id answers 404 from this point on.
func (s *server) handleJobDelete(w http.ResponseWriter, r *http.Request) {
	s.m.requests.Inc()
	if s.store == nil {
		s.fail(w, http.StatusNotFound, "job API disabled (-jobs=false)")
		return
	}
	if !s.store.Cancel(r.PathValue("id")) {
		s.fail(w, http.StatusNotFound, "no such job")
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// jobLookup resolves {id} for the GET handlers.
func (s *server) jobLookup(w http.ResponseWriter, r *http.Request) (cluster.JobStatus, bool) {
	if s.store == nil {
		s.fail(w, http.StatusNotFound, "job API disabled (-jobs=false)")
		return cluster.JobStatus{}, false
	}
	stat, ok := s.store.Status(r.PathValue("id"))
	if !ok {
		s.fail(w, http.StatusNotFound, "no such job")
		return cluster.JobStatus{}, false
	}
	return stat, true
}

// jobsStatzJSON is the "jobs" block of GET /statz.
type jobsStatzJSON struct {
	Submitted int64 `json:"submitted"`
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	Canceled  int64 `json:"canceled"`
	Rejected  int64 `json:"rejected"`
	Replayed  int64 `json:"replayed,omitempty"`
	Queued    int   `json:"queued"`
	Running   int   `json:"running"`
	PAFBytes  int64 `json:"pafBytes"`
}

// jobsStatz builds the jobs block of /statz from the shared registry
// snapshot, so it reports the same instant as every other block. Both
// job stores register the same logan_jobs_* series, so the block is
// store-independent.
func jobsStatz(snap *telemetry.Snapshot) *jobsStatzJSON {
	return &jobsStatzJSON{
		Submitted: snap.Int("logan_jobs_submitted_total"),
		Completed: snap.Int("logan_jobs_completed_total"),
		Failed:    snap.Int("logan_jobs_failed_total"),
		Canceled:  snap.Int("logan_jobs_canceled_total"),
		Rejected:  snap.Int("logan_jobs_rejected_total"),
		Replayed:  snap.Int("logan_jobs_idempotent_replays_total"),
		Queued:    int(snap.Value("logan_jobs_queued")),
		Running:   int(snap.Value("logan_jobs_running")),
		PAFBytes:  snap.Int("logan_jobs_paf_bytes_total"),
	}
}
