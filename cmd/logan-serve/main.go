// Command logan-serve exposes a long-lived logan.Aligner engine over HTTP:
// the serve-mode proof that the engine sustains concurrent batch traffic
// without per-call setup. One engine is built at startup and shared by
// every request.
//
// Endpoints:
//
//	POST /align    {"pairs":[{"query","target","seedQ","seedT","seedLen"}]}
//	GET  /healthz  liveness
//	GET  /statz    process-lifetime totals (requests, pairs, cells, errors)
//
// Usage:
//
//	logan-serve [-addr :8080] [-x 100] [-backend cpu] [-gpus 1]
//	            [-threads 0] [-max-pairs 100000]
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"logan"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		x        = flag.Int("x", 100, "X-drop threshold")
		backend  = flag.String("backend", "cpu", "alignment backend: cpu or gpu")
		gpus     = flag.Int("gpus", 1, "simulated GPU count (gpu backend)")
		threads  = flag.Int("threads", 0, "CPU worker count (0 = GOMAXPROCS)")
		maxPairs = flag.Int("max-pairs", 100_000, "largest accepted batch")
	)
	flag.Parse()

	opt := logan.DefaultOptions(int32(*x))
	opt.Threads = *threads
	switch *backend {
	case "cpu":
	case "gpu":
		opt.Backend = logan.GPU
		opt.GPUs = *gpus
	default:
		fmt.Fprintf(os.Stderr, "logan-serve: unknown backend %q\n", *backend)
		os.Exit(2)
	}
	eng, err := logan.NewAligner(opt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "logan-serve: %v\n", err)
		os.Exit(1)
	}
	defer eng.Close()

	srv := &http.Server{
		Addr:    *addr,
		Handler: newServer(eng, *maxPairs),
		// Large batches upload slowly, but headers and idle keep-alives
		// must not let slow clients pin connections forever.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       5 * time.Minute,
		WriteTimeout:      5 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	fmt.Printf("logan-serve: listening on %s (backend %s, X=%d)\n", *addr, *backend, *x)
	if err := srv.ListenAndServe(); err != nil {
		fmt.Fprintf(os.Stderr, "logan-serve: %v\n", err)
		os.Exit(1)
	}
}
