// Command logan-serve exposes a long-lived logan.Aligner engine over HTTP:
// the serve-mode proof that the engine sustains concurrent batch traffic
// without per-call setup. One engine is built at startup and shared by
// every request.
//
// By default concurrent /align requests are coalesced: a logan.Coalescer
// merges them into engine-sized batches (higher aggregate throughput, up
// to -max-wait of added latency per request) and sheds overload with
// HTTP 429 + Retry-After. Admission is adaptive by default: requests shed
// when the projected queue delay at the measured drain rate exceeds
// -target-delay (or the request's own deadline); -max-pending switches to
// the legacy fixed pending-pair budget instead. -coalesce=false restores
// the direct per-request path. Shed responses carry an X-Logan-Trace
// header ending in a shed span, so a 429'd client sees exactly where
// admission control stopped it.
//
// With -api-keys the server is multi-tenant: requests authenticate via
// X-API-Key (or Authorization: Bearer), each key resolves to a named
// tenant with an optional pairs/sec token-bucket quota and a fair-share
// weight, and the coalescer schedules per-(tenant, class, config) lanes
// by deficit round robin — a flooding tenant exhausts its own share and
// sheds while other tenants' deadline flushes stay on time. Interactive
// /align traffic is scheduled ahead of bulk job-extension chunks (the
// bulk class flushes within -bulk-max-wait instead of -max-wait).
// Unknown keys get 401; requests without credentials share the
// "anonymous" tenant. Without -api-keys everything is anonymous and
// unmetered, as before.
//
// The coalesced path also maintains a content-addressed result cache
// (-cache-entries alignments, LRU): a repeated (pair, configuration)
// is answered from the cache without queueing or charging quota, and
// cached responses are byte-identical to recomputation because the key
// covers the sequence bytes, seed placement and full scoring
// configuration. Per-tenant traffic, shed and cache-hit totals are
// exposed as logan_tenant_* series on /metrics and a "tenants" block on
// /statz; the cache as logan_cache_* and a "cache" block.
//
// Requests are request-scoped: the optional top-level "x" and "scoring"
// fields override the server defaults per request, so one server process
// serves mixed X / linear / affine / BLOSUM62 traffic on a single engine
// (the coalescer merges same-config requests). "scoring" selects
// {"mode":"linear","match","mismatch","gap"},
// {"mode":"affine","match","mismatch","gapOpen","gapExtend"} or
// {"mode":"blosum62","gap"}. Invalid schemes get 400; affine/blosum62 on
// a pure-GPU server get 422 (the kernel is linear-DNA only).
//
// The server also hosts the async overlap-job API: POST a FASTA data set
// to /jobs and the BELLA overlap pipeline (logan.Overlapper) runs it on
// the same shared engine — extension batches interleave with /align
// traffic on the same worker pools and devices, and -job-coalesce
// additionally merges them into the request coalescer's batches. Jobs
// are bounded (-max-jobs retained records, -job-workers concurrent runs)
// and cancellable: DELETE aborts a running job promptly (the backend
// observes the job's context per pair). Retried submissions can carry an
// Idempotency-Key header: a repeat of a key the server still remembers
// maps onto the existing job (original ID, X-Logan-Replayed: true)
// instead of double-executing. See docs/SERVING.md for the full API
// reference.
//
// With -cluster the process becomes the router tier of a scale-out
// cluster: the front door (auth, quotas, admission) is unchanged, but
// accepted /jobs are persisted to a durable file-backed queue
// (-cluster-queue; replayed on restart) and executed by logan-worker
// processes that register over HTTP, heartbeat, and pull work under
// expiring leases (-lease-ttl). A worker that dies mid-job simply stops
// extending its lease; the router requeues the job (at most
// -max-requeues times) and a surviving worker produces byte-identical
// output. /statz gains a "cluster" block and /metrics becomes the
// fleet rollup: every worker's series re-exported under a
// worker="<name>" label. See docs/SERVING.md ("Running a cluster").
//
// The server also hosts the reference-mapping API (logan.Mapper): POST
// a reference FASTA to /map/index (or start with -map-ref/-map-index)
// and POST /map places FASTA reads against it, returning PAF that is
// byte-identical to the offline logan.Mapper.Map output for the same
// reads and index. Mapping extension batches run on the shared engine
// and — with coalescing on — through the same QoS lanes as /align and
// job traffic; logan_map_* series land in /metrics and a "map" block
// in /statz.
//
// Endpoints:
//
//	POST   /align        {"pairs":[{"query","target","seedQ","seedT","seedLen"}],
//	                     "x":..., "scoring":{...}}
//	POST   /jobs         FASTA body (config via ?x=&k=&coverage=... query) or
//	                     {"fastaPath","config":{...}} with -job-data-dir; 202 + id
//	GET    /jobs/{id}    status + progress (stage, reads, k-mers, candidates,
//	                     extensions done/total, shed/retry counts)
//	GET    /jobs/{id}/paf  the finished job's overlaps in PAF (409 until done)
//	DELETE /jobs/{id}    cancel and forget the job (404 afterwards)
//	POST   /map          FASTA reads in, PAF placements out: maps reads
//	                     against the installed minimizer index via the
//	                     minimize → chain → extend pipeline (409 until an
//	                     index is installed; ?x=&maxSecondary=... tune it)
//	POST   /map/index    reference FASTA in; builds the minimizer index
//	                     asynchronously (?k=&w=&maxOcc=) — 202, then poll
//	GET    /map/index    index state: none | building | ready | failed,
//	                     plus the installed index's statistics
//	GET    /healthz      pure liveness: 200 while the process can serve
//	GET    /readyz       readiness: 503 until the engine has run its
//	                     warm-up alignment (and, in router mode, until at
//	                     least one worker is registered), then 200
//	POST   /cluster/...  worker protocol (register, heartbeat, poll,
//	                     extend, complete, fail) — router mode only,
//	                     guarded by -cluster-token
//	GET    /statz        process-lifetime totals (requests, pairs, cells,
//	                     errors, shed, writeErrors), the per-backend
//	                     breakdown (cpu, gpu0, ...), the coalescer counters
//	                     and the jobs block — a JSON view over the same
//	                     registry snapshot /metrics renders
//	GET    /metrics      the whole telemetry registry in Prometheus text
//	                     exposition format (stage latency histograms,
//	                     per-backend gauges, shed/retry counters)
//
// With -debug-addr set, a second listener additionally serves Go's
// net/http/pprof profiles under /debug/pprof/ — kept off the public
// address so profiling endpoints are never exposed to clients.
//
// Usage:
//
//	logan-serve [-addr :8080] [-x 100] [-backend cpu|gpu|hybrid] [-gpus 1]
//	            [-threads 0] [-max-pairs 100000]
//	            [-coalesce] [-coalesce-pairs 4096] [-max-wait 2ms]
//	            [-max-pending 0] [-target-delay 20ms] [-bulk-max-wait 8ms]
//	            [-api-keys keys.conf] [-cache-entries 8192]
//	            [-jobs] [-job-workers 2] [-max-jobs 64]
//	            [-job-body-limit 67108864] [-job-pending-bytes 268435456]
//	            [-job-result-bytes 268435456] [-job-data-dir dir]
//	            [-job-coalesce] [-debug-addr 127.0.0.1:6060]
//	            [-map] [-map-ref ref.fa | -map-index ref.lgi]
//	            [-map-k 15] [-map-w 10] [-map-max-occ 256]
//	            [-cluster -cluster-queue jobs.wal] [-lease-ttl 10s]
//	            [-worker-ttl 30s] [-max-requeues 3] [-cluster-token secret]
//
// SIGINT/SIGTERM drain in-flight requests, cancel live jobs and flush the
// coalescer queue, then release the engine and every cached default
// engine before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"logan"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		x        = flag.Int("x", 100, "X-drop threshold")
		backend  = flag.String("backend", "cpu", "alignment backend: cpu, gpu or hybrid")
		gpus     = flag.Int("gpus", 1, "simulated GPU count (gpu and hybrid backends)")
		threads  = flag.Int("threads", 0, "CPU worker count (0 = GOMAXPROCS)")
		maxPairs = flag.Int("max-pairs", 100_000, "largest accepted batch")
		maxX     = flag.Int("max-x", 10_000, "largest per-request X (caps client-controlled DP work)")

		coalesce = flag.Bool("coalesce", true,
			"merge concurrent requests into engine-sized batches")
		coalescePairs = flag.Int("coalesce-pairs", 0,
			"merged-batch pair target (0 = 4096)")
		maxWait = flag.Duration("max-wait", 0,
			"longest a request may wait for its merged batch to fill (0 = 2ms)")
		maxPending = flag.Int("max-pending", 0,
			"fixed pending-pair budget before requests shed with 429 (0 = adaptive admission)")
		targetDelay = flag.Duration("target-delay", 0,
			"adaptive admission sheds once projected queue delay exceeds this (0 = 10x max-wait)")
		bulkMaxWait = flag.Duration("bulk-max-wait", 0,
			"flush deadline for bulk-class lanes (coalesced job extension chunks; 0 = 4x max-wait)")
		apiKeys = flag.String("api-keys", "",
			"API key file (\"key name [pairsPerSec [burst [weight]]]\" per line) enabling per-tenant quotas and fair-share scheduling (empty = open single-tenant server)")
		cacheEntries = flag.Int("cache-entries", 8192,
			"content-addressed result cache capacity in alignments (0 = disabled; requires -coalesce)")
		debugAddr = flag.String("debug-addr", "",
			"separate listen address for net/http/pprof profiling endpoints (empty = disabled)")

		jobs       = flag.Bool("jobs", true, "enable the async /jobs overlap API")
		jobWorkers = flag.Int("job-workers", 2, "overlap jobs running concurrently")
		maxJobs    = flag.Int("max-jobs", 64, "retained job records before submissions shed with 429")
		jobBody    = flag.Int64("job-body-limit", 64<<20, "largest accepted FASTA upload in bytes")
		jobPending = flag.Int64("job-pending-bytes", 256<<20,
			"aggregate FASTA bytes buffered by ingesting upload jobs before submissions shed with 429")
		jobResults = flag.Int64("job-result-bytes", 256<<20,
			"aggregate PAF bytes retained by finished jobs before the oldest are evicted")
		jobDataDir = flag.String("job-data-dir", "",
			"root directory for server-side fastaPath submissions (empty = uploads only)")
		jobCoalesce = flag.Bool("job-coalesce", false,
			"merge job extension chunks with /align traffic via the coalescer (coarsens DELETE cancellation to whole merged batches)")

		mapAPI = flag.Bool("map", true, "enable the reference-mapping /map API")
		mapRef = flag.String("map-ref", "",
			"reference FASTA to index at startup for /map (empty = build via POST /map/index)")
		mapIndex = flag.String("map-index", "",
			"saved minimizer index (from logan-map build-index) to load at startup for /map")
		mapK      = flag.Int("map-k", 0, "minimizer k-mer length for the -map-ref startup build (0 = 15)")
		mapW      = flag.Int("map-w", 0, "minimizer window for the -map-ref startup build (0 = 10)")
		mapMaxOcc = flag.Int("map-max-occ", 0,
			"mask -map-ref minimizers occurring more than this (0 = 256, negative = no masking)")

		clusterMode = flag.Bool("cluster", false,
			"router mode: accepted /jobs are persisted to a durable queue and executed by logan-worker processes instead of the local engine (requires -jobs)")
		clusterQueue = flag.String("cluster-queue", "",
			"path of the durable job queue file (router mode; required with -cluster)")
		leaseTTL = flag.Duration("lease-ttl", 0,
			"work lease duration before an unextended job is requeued (router mode; 0 = 10s)")
		workerTTL = flag.Duration("worker-ttl", 0,
			"silence after which a worker is dropped from the registry (router mode; 0 = 3x lease TTL)")
		maxRequeues = flag.Int("max-requeues", 0,
			"lease expiries tolerated per job before it fails terminally (router mode; 0 = 3)")
		clusterToken = flag.String("cluster-token", "",
			"shared secret workers must present as X-Logan-Cluster-Token (empty = open worker endpoints)")
	)
	flag.Parse()

	opt := logan.EngineOptions{Threads: *threads, GPUs: *gpus}
	switch *backend {
	case "cpu":
	case "gpu":
		opt.Backend = logan.GPU
	case "hybrid":
		opt.Backend = logan.Hybrid
	default:
		fmt.Fprintf(os.Stderr, "logan-serve: unknown backend %q\n", *backend)
		os.Exit(2)
	}
	eng, err := logan.NewAligner(opt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "logan-serve: %v\n", err)
		os.Exit(1)
	}

	cfg := defaultServeConfig()
	cfg.defCfg = logan.DefaultConfig(int32(*x))
	// Fail fast on a misconfigured default: without this a -x -5 server
	// boots healthy and turns the operator error into per-request 400s.
	if err := cfg.defCfg.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "logan-serve: -x %d: %v\n", *x, err)
		os.Exit(2)
	}
	// The default must sit inside the per-request cap, or a client
	// explicitly sending the server's own X would be rejected while the
	// identical implicit config is served.
	if *x > *maxX {
		fmt.Fprintf(os.Stderr, "logan-serve: -x %d exceeds -max-x %d\n", *x, *maxX)
		os.Exit(2)
	}
	// -job-coalesce routes job chunks through the request coalescer; with
	// -coalesce=false there is none, and silently falling back to the
	// direct path would ignore an explicit operator request.
	if *jobCoalesce && !*coalesce {
		fmt.Fprintln(os.Stderr, "logan-serve: -job-coalesce requires -coalesce")
		os.Exit(2)
	}
	if *apiKeys != "" {
		keys, err := loadAPIKeys(*apiKeys)
		if err != nil {
			fmt.Fprintf(os.Stderr, "logan-serve: -api-keys: %v\n", err)
			os.Exit(2)
		}
		cfg.apiKeys = keys
	}
	cfg.maxPairs = *maxPairs
	cfg.maxX = int32(*maxX)
	cfg.coalesce = *coalesce
	cfg.coalescePairs = *coalescePairs
	cfg.maxWait = *maxWait
	cfg.maxPending = *maxPending
	cfg.targetDelay = *targetDelay
	cfg.bulkMaxWait = *bulkMaxWait
	cfg.cacheEntries = *cacheEntries
	cfg.jobs = *jobs
	cfg.jobWorkers = *jobWorkers
	cfg.maxJobs = *maxJobs
	cfg.jobBodyLimit = *jobBody
	cfg.jobPendingBytes = *jobPending
	cfg.jobResultBytes = *jobResults
	cfg.jobDataDir = *jobDataDir
	cfg.jobCoalesce = *jobCoalesce
	// Router mode replaces the local job store: it only makes sense with
	// the /jobs API on, and it cannot run without somewhere durable to
	// put accepted work.
	if *clusterMode {
		if !*jobs {
			fmt.Fprintln(os.Stderr, "logan-serve: -cluster requires -jobs")
			os.Exit(2)
		}
		if *clusterQueue == "" {
			fmt.Fprintln(os.Stderr, "logan-serve: -cluster requires -cluster-queue")
			os.Exit(2)
		}
	}
	cfg.maps = *mapAPI
	if (*mapRef != "" || *mapIndex != "") && !*mapAPI {
		fmt.Fprintln(os.Stderr, "logan-serve: -map-ref/-map-index require -map")
		os.Exit(2)
	}
	if *mapRef != "" && *mapIndex != "" {
		fmt.Fprintln(os.Stderr, "logan-serve: -map-ref and -map-index are mutually exclusive")
		os.Exit(2)
	}
	cfg.cluster = *clusterMode
	cfg.clusterQueue = *clusterQueue
	cfg.leaseTTL = *leaseTTL
	cfg.workerTTL = *workerTTL
	cfg.maxRequeues = *maxRequeues
	cfg.clusterToken = *clusterToken
	handler, err := newServer(eng, cfg)
	if err != nil {
		eng.Close()
		fmt.Fprintf(os.Stderr, "logan-serve: %v\n", err)
		os.Exit(1)
	}
	// Startup index installation is synchronous: a -map-ref server that
	// accepts traffic before the index exists would 409 every /map until
	// the build lands, which reads as flapping to a load balancer.
	if *mapRef != "" || *mapIndex != "" {
		path := *mapRef
		if path == "" {
			path = *mapIndex
		}
		f, err := os.Open(path)
		if err == nil {
			if *mapRef != "" {
				_, err = handler.maps.mapper.Build(context.Background(), f,
					logan.IndexOptions{K: *mapK, W: *mapW, MaxOccurrence: *mapMaxOcc})
			} else {
				_, err = handler.maps.mapper.Load(f)
			}
			f.Close()
		}
		if err != nil {
			handler.Close()
			eng.Close()
			fmt.Fprintf(os.Stderr, "logan-serve: %s: %v\n", path, err)
			os.Exit(1)
		}
		st, _ := handler.maps.mapper.IndexStats()
		fmt.Printf("logan-serve: mapping index ready (%d refs, %d bases, k=%d w=%d)\n",
			st.Refs, st.Bases, st.K, st.W)
	}

	srv := &http.Server{
		Addr:    *addr,
		Handler: handler,
		// Large batches upload slowly, but headers and idle keep-alives
		// must not let slow clients pin connections forever.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       5 * time.Minute,
		WriteTimeout:      5 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}

	// pprof lives on its own listener (never the public mux) so profiling
	// and heap-dump endpoints stay reachable only from wherever the
	// operator points -debug-addr.
	var dbgSrv *http.Server
	if *debugAddr != "" {
		dbgMux := http.NewServeMux()
		dbgMux.HandleFunc("/debug/pprof/", pprof.Index)
		dbgMux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dbgMux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dbgMux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dbgMux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dbgSrv = &http.Server{Addr: *debugAddr, Handler: dbgMux, ReadHeaderTimeout: 10 * time.Second}
		go func() {
			if err := dbgSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintf(os.Stderr, "logan-serve: debug listener: %v\n", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe() }()
	fmt.Printf("logan-serve: listening on %s (backend %s, X=%d, coalesce %v)\n",
		*addr, *backend, *x, *coalesce)

	var exitErr error
	select {
	case exitErr = <-done:
	case <-ctx.Done():
		// Drain in-flight requests, then release the engine's worker
		// pools and any engines cached behind the package-level Align so
		// the process exits with nothing still running.
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		exitErr = srv.Shutdown(shutdownCtx)
		cancel()
	}
	if dbgSrv != nil {
		dbgSrv.Close()
	}
	// In-flight handlers have returned; flush the coalescer's residual
	// queue before the engine goes away.
	handler.Close()
	eng.Close()
	logan.CloseDefaultEngines()
	if exitErr != nil && !errors.Is(exitErr, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "logan-serve: %v\n", exitErr)
		os.Exit(1)
	}
}
