// Command logan-serve exposes a long-lived logan.Aligner engine over HTTP:
// the serve-mode proof that the engine sustains concurrent batch traffic
// without per-call setup. One engine is built at startup and shared by
// every request.
//
// Endpoints:
//
//	POST /align    {"pairs":[{"query","target","seedQ","seedT","seedLen"}]}
//	GET  /healthz  liveness
//	GET  /statz    process-lifetime totals (requests, pairs, cells, errors)
//	               plus the per-backend breakdown (cpu, gpu0, ...)
//
// Usage:
//
//	logan-serve [-addr :8080] [-x 100] [-backend cpu|gpu|hybrid] [-gpus 1]
//	            [-threads 0] [-max-pairs 100000]
//
// SIGINT/SIGTERM drain in-flight requests, then release the engine and
// every cached default engine before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"logan"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		x        = flag.Int("x", 100, "X-drop threshold")
		backend  = flag.String("backend", "cpu", "alignment backend: cpu, gpu or hybrid")
		gpus     = flag.Int("gpus", 1, "simulated GPU count (gpu and hybrid backends)")
		threads  = flag.Int("threads", 0, "CPU worker count (0 = GOMAXPROCS)")
		maxPairs = flag.Int("max-pairs", 100_000, "largest accepted batch")
	)
	flag.Parse()

	opt := logan.DefaultOptions(int32(*x))
	opt.Threads = *threads
	opt.GPUs = *gpus
	switch *backend {
	case "cpu":
	case "gpu":
		opt.Backend = logan.GPU
	case "hybrid":
		opt.Backend = logan.Hybrid
	default:
		fmt.Fprintf(os.Stderr, "logan-serve: unknown backend %q\n", *backend)
		os.Exit(2)
	}
	eng, err := logan.NewAligner(opt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "logan-serve: %v\n", err)
		os.Exit(1)
	}

	srv := &http.Server{
		Addr:    *addr,
		Handler: newServer(eng, *maxPairs),
		// Large batches upload slowly, but headers and idle keep-alives
		// must not let slow clients pin connections forever.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       5 * time.Minute,
		WriteTimeout:      5 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe() }()
	fmt.Printf("logan-serve: listening on %s (backend %s, X=%d)\n", *addr, *backend, *x)

	var exitErr error
	select {
	case exitErr = <-done:
	case <-ctx.Done():
		// Drain in-flight requests, then release the engine's worker
		// pools and any engines cached behind the package-level Align so
		// the process exits with nothing still running.
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		exitErr = srv.Shutdown(shutdownCtx)
		cancel()
	}
	eng.Close()
	logan.CloseDefaultEngines()
	if exitErr != nil && !errors.Is(exitErr, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "logan-serve: %v\n", exitErr)
		os.Exit(1)
	}
}
