package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"logan"
)

func testServer(t *testing.T) (*httptest.Server, *logan.Aligner) {
	t.Helper()
	eng, err := logan.NewAligner(logan.DefaultOptions(50))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(newServer(eng, 1000))
	t.Cleanup(func() {
		srv.Close()
		eng.Close()
	})
	return srv, eng
}

func postAlign(t *testing.T, url string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/align", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func TestServeAlign(t *testing.T) {
	srv, _ := testServer(t)
	resp, data := postAlign(t, srv.URL,
		`{"pairs":[{"query":"ACGTACGTACGTACGT","target":"ACGTACGTACGTACGT","seedQ":4,"seedT":4,"seedLen":4}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var out alignResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Alignments) != 1 {
		t.Fatalf("alignments: %+v", out)
	}
	want, err := logan.AlignPair(
		[]byte("ACGTACGTACGTACGT"), []byte("ACGTACGTACGTACGT"), 4, 4, 4,
		logan.DefaultOptions(50))
	if err != nil {
		t.Fatal(err)
	}
	got := out.Alignments[0]
	if got.Score != want.Score || got.QBegin != want.QBegin || got.QEnd != want.QEnd {
		t.Fatalf("served %+v, want %+v", got, want)
	}
	if out.Stats.Pairs != 1 || out.Stats.WallNS <= 0 {
		t.Fatalf("stats %+v", out.Stats)
	}
}

func TestServeErrors(t *testing.T) {
	srv, _ := testServer(t)
	for _, tc := range []struct {
		name, body string
		status     int
	}{
		{"malformed json", `{"pairs":`, http.StatusBadRequest},
		{"invalid base", `{"pairs":[{"query":"AXGT","target":"ACGT","seedLen":2}]}`, http.StatusUnprocessableEntity},
		{"seed out of range", `{"pairs":[{"query":"ACGT","target":"ACGT","seedQ":3,"seedLen":4}]}`, http.StatusUnprocessableEntity},
		{"oversized batch", func() string {
			var b strings.Builder
			b.WriteString(`{"pairs":[`)
			for i := 0; i < 1001; i++ {
				if i > 0 {
					b.WriteByte(',')
				}
				b.WriteString(`{"query":"ACGT","target":"ACGT","seedLen":2}`)
			}
			b.WriteString(`]}`)
			return b.String()
		}(), http.StatusRequestEntityTooLarge},
	} {
		resp, data := postAlign(t, srv.URL, tc.body)
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d (want %d): %s", tc.name, resp.StatusCode, tc.status, data)
		}
	}
}

func TestServeHealthAndStatz(t *testing.T) {
	srv, _ := testServer(t)
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}

	postAlign(t, srv.URL, `{"pairs":[{"query":"ACGTACGT","target":"ACGTACGT","seedLen":4}]}`)
	resp, err = http.Get(srv.URL + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var totals statzJSON
	if err := json.NewDecoder(resp.Body).Decode(&totals); err != nil {
		t.Fatal(err)
	}
	if totals.Requests < 1 || totals.Pairs < 1 || totals.Cells < 1 {
		t.Fatalf("statz %+v", totals)
	}
	// The per-backend breakdown must cover the served pairs: the test
	// engine is CPU-backed, so everything lands on the "cpu" worker.
	cpu, ok := totals.Backends["cpu"]
	if !ok || cpu.Pairs < 1 || cpu.Cells < 1 {
		t.Fatalf("statz backends %+v", totals.Backends)
	}
}

// TestServeConcurrentRequests hammers the shared engine from many client
// goroutines; run with -race this is the serve-mode acceptance check. Each
// request's response must match the equivalent direct AlignPair call.
func TestServeConcurrentRequests(t *testing.T) {
	srv, _ := testServer(t)
	query := "ACGTACGTACGTACGTACGTACGTACGTACGT"
	want, err := logan.AlignPair([]byte(query), []byte(query), 8, 8, 8, logan.DefaultOptions(50))
	if err != nil {
		t.Fatal(err)
	}
	body := fmt.Sprintf(
		`{"pairs":[{"query":%q,"target":%q,"seedQ":8,"seedT":8,"seedLen":8}]}`, query, query)

	const clients, perClient = 8, 10
	var wg sync.WaitGroup
	errs := make(chan error, clients*perClient)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				resp, err := http.Post(srv.URL+"/align", "application/json",
					bytes.NewReader([]byte(body)))
				if err != nil {
					errs <- err
					return
				}
				var out alignResponse
				err = json.NewDecoder(resp.Body).Decode(&out)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				if len(out.Alignments) != 1 || out.Alignments[0].Score != want.Score {
					errs <- fmt.Errorf("got %+v, want score %d", out.Alignments, want.Score)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
