package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"logan"
	"logan/internal/seq"
)

// testServerCfg builds a serve stack with the given config; cleanup order
// matters: the coalescer must drain before the listener and engine close.
func testServerCfg(t *testing.T, cfg serveConfig) (*httptest.Server, *server, *logan.Aligner) {
	t.Helper()
	eng, err := logan.NewAligner(logan.EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.defCfg == (logan.Config{}) {
		cfg.defCfg = logan.DefaultConfig(50)
	}
	s, err := newServer(eng, cfg)
	if err != nil {
		eng.Close()
		t.Fatal(err)
	}
	srv := httptest.NewServer(s)
	t.Cleanup(func() {
		s.Close()
		srv.Close()
		eng.Close()
	})
	return srv, s, eng
}

// waitReady polls /readyz until it reports 200, failing the test if the
// server never becomes ready.
func waitReady(t *testing.T, url string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(url + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("server not ready within 30s (last status %d)", resp.StatusCode)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func testServer(t *testing.T) (*httptest.Server, *logan.Aligner) {
	t.Helper()
	cfg := defaultServeConfig()
	cfg.defCfg = logan.DefaultConfig(50)
	cfg.maxPairs = 1000
	cfg.maxWait = time.Millisecond
	srv, _, eng := testServerCfg(t, cfg)
	return srv, eng
}

func postAlign(t *testing.T, url string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/align", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func TestServeAlign(t *testing.T) {
	srv, _ := testServer(t)
	resp, data := postAlign(t, srv.URL,
		`{"pairs":[{"query":"ACGTACGTACGTACGT","target":"ACGTACGTACGTACGT","seedQ":4,"seedT":4,"seedLen":4}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var out alignResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Alignments) != 1 {
		t.Fatalf("alignments: %+v", out)
	}
	want, err := logan.AlignPair(
		[]byte("ACGTACGTACGTACGT"), []byte("ACGTACGTACGTACGT"), 4, 4, 4,
		logan.DefaultOptions(50))
	if err != nil {
		t.Fatal(err)
	}
	got := out.Alignments[0]
	if got.Score != want.Score || got.QBegin != want.QBegin || got.QEnd != want.QEnd {
		t.Fatalf("served %+v, want %+v", got, want)
	}
	if out.Stats.Pairs != 1 || out.Stats.WallNS <= 0 {
		t.Fatalf("stats %+v", out.Stats)
	}
}

func TestServeErrors(t *testing.T) {
	srv, _ := testServer(t)
	for _, tc := range []struct {
		name, body string
		status     int
	}{
		{"malformed json", `{"pairs":`, http.StatusBadRequest},
		{"trailing garbage", `{"pairs":[]} GARBAGE`, http.StatusBadRequest},
		{"second json document", `{"pairs":[]} {"pairs":[]}`, http.StatusBadRequest},
		{"invalid base", `{"pairs":[{"query":"AXGT","target":"ACGT","seedLen":2}]}`, http.StatusUnprocessableEntity},
		{"seed out of range", `{"pairs":[{"query":"ACGT","target":"ACGT","seedQ":3,"seedLen":4}]}`, http.StatusUnprocessableEntity},
		{"seed position overflow", `{"pairs":[{"query":"ACGT","target":"ACGT","seedQ":9223372036854775806,"seedLen":4}]}`, http.StatusUnprocessableEntity},
		{"oversized batch", func() string {
			var b strings.Builder
			b.WriteString(`{"pairs":[`)
			for i := 0; i < 1001; i++ {
				if i > 0 {
					b.WriteByte(',')
				}
				b.WriteString(`{"query":"ACGT","target":"ACGT","seedLen":2}`)
			}
			b.WriteString(`]}`)
			return b.String()
		}(), http.StatusRequestEntityTooLarge},
	} {
		resp, data := postAlign(t, srv.URL, tc.body)
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d (want %d): %s", tc.name, resp.StatusCode, tc.status, data)
		}
	}
	// Trailing whitespace after the document is not garbage.
	resp, data := postAlign(t, srv.URL, `{"pairs":[]}`+"\n  \n")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("trailing whitespace: status %d: %s", resp.StatusCode, data)
	}
}

// TestServeOversizedBody pins the 413 contract: a body over the wire limit
// must not surface as a generic 400 decode error.
func TestServeOversizedBody(t *testing.T) {
	cfg := defaultServeConfig()
	cfg.bodyLimit = 128
	cfg.maxWait = time.Millisecond
	srv, _, _ := testServerCfg(t, cfg)

	big := fmt.Sprintf(`{"pairs":[{"query":%q,"target":%q,"seedLen":4}]}`,
		strings.Repeat("ACGT", 100), strings.Repeat("ACGT", 100))
	resp, data := postAlign(t, srv.URL, big)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d (want 413): %s", resp.StatusCode, data)
	}
	if !strings.Contains(string(data), "128-byte limit") {
		t.Fatalf("413 body does not name the limit: %s", data)
	}
	// A body under the limit still works.
	resp, data = postAlign(t, srv.URL, `{"pairs":[]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("small body after big: status %d: %s", resp.StatusCode, data)
	}
}

// failingWriter is a ResponseWriter whose client is gone: every write
// fails. It drives the WriteErrors accounting deterministically.
type failingWriter struct {
	h    http.Header
	code int
}

func (f *failingWriter) Header() http.Header       { return f.h }
func (f *failingWriter) WriteHeader(code int)      { f.code = code }
func (f *failingWriter) Write([]byte) (int, error) { return 0, errors.New("client gone") }

// TestServeWriteErrors checks that response-encoding failures are counted
// and surfaced in /statz rather than silently dropped.
func TestServeWriteErrors(t *testing.T) {
	eng, err := logan.NewAligner(logan.EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	cfg := defaultServeConfig()
	cfg.defCfg = logan.DefaultConfig(50)
	cfg.maxWait = time.Millisecond
	s, err := newServer(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	req := httptest.NewRequest("POST", "/align",
		strings.NewReader(`{"pairs":[{"query":"ACGTACGT","target":"ACGTACGT","seedLen":4}]}`))
	fw := &failingWriter{h: make(http.Header)}
	s.ServeHTTP(fw, req)
	if got := s.m.writeErrors.Value(); got != 1 {
		t.Fatalf("WriteErrors = %g, want 1", got)
	}

	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/statz", nil))
	var totals statzJSON
	if err := json.NewDecoder(rec.Body).Decode(&totals); err != nil {
		t.Fatal(err)
	}
	if totals.WriteErrors != 1 {
		t.Fatalf("statz writeErrors = %d, want 1: %+v", totals.WriteErrors, totals)
	}
	// The alignment itself ran; only delivery failed.
	if totals.Pairs != 1 {
		t.Fatalf("statz pairs = %d, want 1", totals.Pairs)
	}
}

// TestServeShed pins the admission-control contract: once the pending
// budget is full, requests get 429 with a Retry-After header, and the
// queued requests still complete when the coalescer drains.
func TestServeShed(t *testing.T) {
	cfg := defaultServeConfig()
	cfg.coalescePairs = 1000 // never size-flush
	cfg.maxWait = 10 * time.Second
	cfg.maxPending = 4
	srv, s, _ := testServerCfg(t, cfg)

	pairBody := func(n int) string {
		var b strings.Builder
		b.WriteString(`{"pairs":[`)
		for i := 0; i < n; i++ {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(`{"query":"ACGTACGTACGTACGT","target":"ACGTACGTACGTACGT","seedQ":4,"seedT":4,"seedLen":4}`)
		}
		b.WriteString(`]}`)
		return b.String()
	}

	type result struct {
		status int
		body   string
	}
	queued := make(chan result, 1)
	go func() {
		resp, err := http.Post(srv.URL+"/align", "application/json",
			strings.NewReader(pairBody(3)))
		if err != nil {
			queued <- result{status: -1, body: err.Error()}
			return
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		queued <- result{status: resp.StatusCode, body: string(data)}
	}()

	// Wait until the 3 pairs are visibly queued before overflowing.
	deadline := time.Now().Add(10 * time.Second)
	for s.coal.Metrics().QueuedPairs != 3 {
		if time.Now().After(deadline) {
			t.Fatalf("request never queued: %+v", s.coal.Metrics())
		}
		time.Sleep(time.Millisecond)
	}

	resp, err := http.Post(srv.URL+"/align", "application/json", strings.NewReader(pairBody(2)))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow status %d (want 429): %s", resp.StatusCode, data)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "10" {
		t.Fatalf("Retry-After %q, want %q", ra, "10")
	}
	// Every shed response closes its trace with a shed span and ships it,
	// so a 429'd client sees where admission control stopped it.
	if trh := resp.Header.Get("X-Logan-Trace"); !strings.Contains(trh, "shed=") {
		t.Fatalf("shed response X-Logan-Trace %q missing shed span", trh)
	}

	// Draining the coalescer completes the queued request with 200.
	s.Close()
	r := <-queued
	if r.status != http.StatusOK {
		t.Fatalf("queued request: status %d: %s", r.status, r.body)
	}

	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/statz", nil))
	var totals statzJSON
	if err := json.NewDecoder(rec.Body).Decode(&totals); err != nil {
		t.Fatal(err)
	}
	if totals.Shed != 1 || totals.Coalescer == nil || totals.Coalescer.Shed != 1 {
		t.Fatalf("statz shed accounting: %+v (coalescer %+v)", totals, totals.Coalescer)
	}
	if totals.Coalescer.DrainFlushes == 0 {
		t.Fatalf("statz drain flush missing: %+v", totals.Coalescer)
	}
}

func TestServeHealthAndStatz(t *testing.T) {
	srv, _ := testServer(t)
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}

	postAlign(t, srv.URL, `{"pairs":[{"query":"ACGTACGT","target":"ACGTACGT","seedLen":4}]}`)
	resp, err = http.Get(srv.URL + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var totals statzJSON
	if err := json.NewDecoder(resp.Body).Decode(&totals); err != nil {
		t.Fatal(err)
	}
	if totals.Requests < 1 || totals.Pairs < 1 || totals.Cells < 1 {
		t.Fatalf("statz %+v", totals)
	}
	// The per-backend breakdown must cover the served pairs: the test
	// engine is CPU-backed, so everything lands on the "cpu" worker.
	cpu, ok := totals.Backends["cpu"]
	if !ok || cpu.Pairs < 1 || cpu.Cells < 1 {
		t.Fatalf("statz backends %+v", totals.Backends)
	}
	// Coalescing is on in the test server, so the merged-batch counters
	// must account for the aligned request.
	c := totals.Coalescer
	if c == nil || c.MergedBatches < 1 || c.MergedPairs < 1 {
		t.Fatalf("statz coalescer %+v", c)
	}
}

// TestServeConcurrentRequests hammers the shared engine from many client
// goroutines; run with -race this is the serve-mode acceptance check. Each
// client posts a distinct pair set and must get exactly its own alignments
// back, bit-identical to a direct engine call — the HTTP-level scatter
// correctness check for the coalescing layer. Each client repeats its
// body, so rounds after the first are served by the result cache and the
// same assertion doubles as the cache's bit-identity check over HTTP.
func TestServeConcurrentRequests(t *testing.T) {
	srv, eng := testServer(t)

	const clients, perClient = 8, 10
	type workload struct {
		body string
		want []logan.Alignment
	}
	loads := make([]workload, clients)
	for c := range loads {
		rng := rand.New(rand.NewSource(int64(100 + c)))
		raw := seq.RandPairSet(rng, seq.PairSetOptions{
			N: 2 + c%3, MinLen: 80, MaxLen: 200, ErrorRate: 0.15, SeedLen: 17,
		})
		pairs := make([]logan.Pair, len(raw))
		js := make([]string, len(raw))
		for i, p := range raw {
			pairs[i] = logan.Pair{
				Query: []byte(p.Query), Target: []byte(p.Target),
				SeedQ: p.SeedQPos, SeedT: p.SeedTPos, SeedLen: p.SeedLen,
			}
			js[i] = fmt.Sprintf(`{"query":%q,"target":%q,"seedQ":%d,"seedT":%d,"seedLen":%d}`,
				p.Query, p.Target, p.SeedQPos, p.SeedTPos, p.SeedLen)
		}
		want, _, err := eng.Align(context.Background(), pairs, logan.DefaultConfig(50))
		if err != nil {
			t.Fatal(err)
		}
		loads[c] = workload{
			body: `{"pairs":[` + strings.Join(js, ",") + `]}`,
			want: want,
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, clients*perClient)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				resp, err := http.Post(srv.URL+"/align", "application/json",
					bytes.NewReader([]byte(loads[c].body)))
				if err != nil {
					errs <- err
					return
				}
				var out alignResponse
				err = json.NewDecoder(resp.Body).Decode(&out)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				if len(out.Alignments) != len(loads[c].want) {
					errs <- fmt.Errorf("client %d: %d alignments, want %d",
						c, len(out.Alignments), len(loads[c].want))
					return
				}
				for j, a := range out.Alignments {
					w := loads[c].want[j]
					if a.Score != w.Score || a.QBegin != w.QBegin || a.QEnd != w.QEnd ||
						a.TBegin != w.TBegin || a.TEnd != w.TEnd || a.Cells != w.Cells {
						errs <- fmt.Errorf("client %d pair %d: served %+v, want %+v", c, j, a, w)
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	resp, err := http.Get(srv.URL + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var totals statzJSON
	if err := json.NewDecoder(resp.Body).Decode(&totals); err != nil {
		t.Fatal(err)
	}
	if totals.Errors != 0 {
		t.Fatalf("statz errors %d: %+v", totals.Errors, totals)
	}
	// Each client's first round fills the cache (its own fill completes
	// before its response is sent), so only round one per client reaches
	// the engine and every later round is all cache hits.
	c := totals.Coalescer
	if c == nil || c.MergedRequests != clients || c.QueuedPairs != 0 {
		t.Fatalf("statz coalescer %+v: want %d merged requests (one per distinct workload), empty queue", c, clients)
	}
	if totals.Cache == nil || totals.Cache.Hits != (perClient-1)*c.MergedPairs {
		t.Fatalf("statz cache %+v: want %d hits for %d repeated rounds of %d pairs",
			totals.Cache, (perClient-1)*c.MergedPairs, perClient-1, c.MergedPairs)
	}
}

// TestServePerRequestPath checks the -coalesce=false escape hatch still
// serves correctly and reports per-backend stats from the handler path.
func TestServePerRequestPath(t *testing.T) {
	cfg := defaultServeConfig()
	cfg.coalesce = false
	srv, _, _ := testServerCfg(t, cfg)
	resp, data := postAlign(t, srv.URL,
		`{"pairs":[{"query":"ACGTACGTACGTACGT","target":"ACGTACGTACGTACGT","seedQ":4,"seedT":4,"seedLen":4}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var totals statzJSON
	r2, err := http.Get(srv.URL + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	if err := json.NewDecoder(r2.Body).Decode(&totals); err != nil {
		t.Fatal(err)
	}
	if totals.Coalescer != nil {
		t.Fatalf("coalescer stats present with coalescing off: %+v", totals.Coalescer)
	}
	if cpu, ok := totals.Backends["cpu"]; !ok || cpu.Pairs < 1 {
		t.Fatalf("per-request backend stats missing: %+v", totals.Backends)
	}
}

// TestServePerRequestConfig pins the request-scoped parameters end to
// end: "x" and "scoring" must reach the engine (scores change
// accordingly), with exact known values. The pair has 4 substitutions
// between two exact runs, so the right extension recovers +4 only when X
// allows crossing the mismatch trough.
func TestServePerRequestConfig(t *testing.T) {
	srv, _ := testServer(t)
	const pairQ = `"query":"AAAAAAAACCCCAAAAAAAA","target":"AAAAAAAAGGGGAAAAAAAA","seedQ":0,"seedT":0,"seedLen":8`

	score := func(body string) (int32, int, string) {
		t.Helper()
		resp, data := postAlign(t, srv.URL, body)
		if resp.StatusCode != http.StatusOK {
			return 0, resp.StatusCode, string(data)
		}
		var out alignResponse
		if err := json.Unmarshal(data, &out); err != nil {
			t.Fatal(err)
		}
		return out.Alignments[0].Score, resp.StatusCode, ""
	}

	// Server default (X=50, linear +1/-1/-1): recovers past the trough.
	if got, code, body := score(`{"pairs":[{` + pairQ + `}]}`); code != 200 || got != 12 {
		t.Fatalf("default config: score %d code %d %s, want 12", got, code, body)
	}
	// Per-request X=2: the trough prunes the extension, score drops to 8.
	if got, code, body := score(`{"pairs":[{` + pairQ + `}],"x":2}`); code != 200 || got != 8 {
		t.Fatalf("x=2: score %d code %d %s, want 8", got, code, body)
	}
	// Per-request affine scoring: substitutions still beat gaps, 12.
	if got, code, body := score(`{"pairs":[{` + pairQ + `}],"scoring":{"mode":"affine","match":1,"mismatch":-1,"gapOpen":-2,"gapExtend":-1}}`); code != 200 || got != 12 {
		t.Fatalf("affine: score %d code %d %s, want 12", got, code, body)
	}
	// Per-request doubled linear scheme: 8*2 + 4*(recover 4*2-4*3... )
	// keep it simple — match 2 doubles the all-match seed+recovery arm:
	// seed 8*2=16, trough -4*3=-12 then +8*2=16 nets +4 at X=50.
	if got, code, body := score(`{"pairs":[{` + pairQ + `}],"scoring":{"mode":"linear","match":2,"mismatch":-3,"gap":-2}}`); code != 200 || got != 20 {
		t.Fatalf("linear 2/-3/-2: score %d code %d %s, want 20", got, code, body)
	}
	// Per-request BLOSUM62 over DNA letters (all in the amino alphabet):
	// identical 16-mers score 2*(A4+C9+G6+T5)*2 = 96.
	if got, code, body := score(`{"pairs":[{"query":"ACGTACGTACGTACGT","target":"ACGTACGTACGTACGT","seedQ":0,"seedT":0,"seedLen":8}],"scoring":{"mode":"blosum62","gap":-6}}`); code != 200 || got != 96 {
		t.Fatalf("blosum62: score %d code %d %s, want 96", got, code, body)
	}
	// Protein sequences are accepted under a matrix config...
	if got, code, body := score(`{"pairs":[{"query":"MKWVTFISLL","target":"MKWVTFISLL","seedQ":2,"seedT":2,"seedLen":4}],"scoring":{"mode":"blosum62","gap":-6}}`); code != 200 || got <= 0 {
		t.Fatalf("protein blosum62: score %d code %d %s", got, code, body)
	}
	// ...and rejected by the default DNA path.
	if _, code, _ := score(`{"pairs":[{"query":"MKWVTFISLL","target":"MKWVTFISLL","seedQ":2,"seedT":2,"seedLen":4}]}`); code != http.StatusUnprocessableEntity {
		t.Fatalf("protein under DNA config: code %d, want 422", code)
	}
}

// TestServeInvalidScoring pins the error semantics for bad schemes: 400
// before any pair queues, with nothing aligned.
func TestServeInvalidScoring(t *testing.T) {
	srv, _ := testServer(t)
	for _, tc := range []struct{ name, body string }{
		{"unknown mode", `{"pairs":[],"scoring":{"mode":"smith-waterman"}}`},
		{"zero linear", `{"pairs":[],"scoring":{"mode":"linear"}}`},
		{"positive gap", `{"pairs":[],"scoring":{"mode":"linear","match":1,"mismatch":-1,"gap":1}}`},
		{"affine missing extend", `{"pairs":[],"scoring":{"mode":"affine","match":1,"mismatch":-1,"gapOpen":-2}}`},
		{"blosum62 bad gap", `{"pairs":[],"scoring":{"mode":"blosum62","gap":0}}`},
		{"negative x", `{"pairs":[],"x":-5}`},
		{"x over the server cap", `{"pairs":[],"x":2147483647}`},
		{"score parameter over the bound", `{"pairs":[],"scoring":{"mode":"linear","match":16777216,"mismatch":-1,"gap":-1}}`},
	} {
		resp, data := postAlign(t, srv.URL, tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d (want 400): %s", tc.name, resp.StatusCode, data)
		}
	}
	// The per-pair score-overflow budget is enforced by the engine's
	// ingest (shared with library/CLI callers) and surfaces as 422.
	overflow := fmt.Sprintf(`{"pairs":[{"query":%q,"target":%q,"seedLen":4}],"scoring":{"mode":"linear","match":1048576,"mismatch":-1,"gap":-1}}`,
		strings.Repeat("ACGT", 1024), strings.Repeat("ACGT", 1024))
	resp, data := postAlign(t, srv.URL, overflow)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("score overflow budget: status %d (want 422): %s", resp.StatusCode, data)
	}
}

// TestServeGPURejectsNonLinear: a pure-GPU server answers affine and
// matrix requests with 422 — the documented backend restriction.
func TestServeGPURejectsNonLinear(t *testing.T) {
	eng, err := logan.NewAligner(logan.EngineOptions{Backend: logan.GPU})
	if err != nil {
		t.Fatal(err)
	}
	cfg := defaultServeConfig()
	cfg.defCfg = logan.DefaultConfig(50)
	cfg.maxWait = time.Millisecond
	s, err := newServer(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s)
	t.Cleanup(func() { s.Close(); srv.Close(); eng.Close() })

	body := `{"pairs":[{"query":"ACGTACGT","target":"ACGTACGT","seedLen":4}],"scoring":{"mode":"affine","match":1,"mismatch":-1,"gapOpen":-2,"gapExtend":-1}}`
	resp, data := postAlign(t, srv.URL, body)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("affine on GPU: status %d (want 422): %s", resp.StatusCode, data)
	}
	// Linear traffic on the same server still works.
	resp, data = postAlign(t, srv.URL, `{"pairs":[{"query":"ACGTACGT","target":"ACGTACGT","seedLen":4}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("linear on GPU after 422: status %d: %s", resp.StatusCode, data)
	}
}

// TestServeMixedConfigCoalescing drives concurrent mixed-config traffic
// through the HTTP layer: every response must be correct and the
// coalescer must still merge (mergedBatches < requests).
func TestServeMixedConfigCoalescing(t *testing.T) {
	cfg := defaultServeConfig()
	cfg.defCfg = logan.DefaultConfig(50)
	cfg.maxWait = 20 * time.Millisecond
	srv, s, _ := testServerCfg(t, cfg)

	bodies := []struct {
		body string
		want int32
	}{
		{`{"pairs":[{"query":"AAAAAAAACCCCAAAAAAAA","target":"AAAAAAAAGGGGAAAAAAAA","seedQ":0,"seedT":0,"seedLen":8}]}`, 12},
		{`{"pairs":[{"query":"AAAAAAAACCCCAAAAAAAA","target":"AAAAAAAAGGGGAAAAAAAA","seedQ":0,"seedT":0,"seedLen":8}],"x":2}`, 8},
		{`{"pairs":[{"query":"AAAAAAAACCCCAAAAAAAA","target":"AAAAAAAAGGGGAAAAAAAA","seedQ":0,"seedT":0,"seedLen":8}],"scoring":{"mode":"affine","match":1,"mismatch":-1,"gapOpen":-2,"gapExtend":-1}}`, 12},
		{`{"pairs":[{"query":"ACGTACGTACGTACGT","target":"ACGTACGTACGTACGT","seedQ":0,"seedT":0,"seedLen":8}],"scoring":{"mode":"blosum62","gap":-6}}`, 96},
	}
	const perBody = 8
	var wg sync.WaitGroup
	for i := range bodies {
		for j := 0; j < perBody; j++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				resp, data := postAlign(t, srv.URL, bodies[i].body)
				if resp.StatusCode != http.StatusOK {
					t.Errorf("body %d: status %d: %s", i, resp.StatusCode, data)
					return
				}
				var out alignResponse
				if err := json.Unmarshal(data, &out); err != nil {
					t.Error(err)
					return
				}
				if out.Alignments[0].Score != bodies[i].want {
					t.Errorf("body %d: score %d, want %d", i, out.Alignments[0].Score, bodies[i].want)
				}
			}(i)
		}
	}
	wg.Wait()

	m := s.coal.Metrics()
	total := int64(len(bodies) * perBody)
	if m.MergedRequests != total {
		t.Fatalf("metrics %+v: want %d merged requests", m, total)
	}
	if m.MergedBatches == 0 || m.MergedBatches >= total {
		t.Fatalf("mixed-config HTTP traffic did not merge: %d batches / %d requests", m.MergedBatches, total)
	}
}
