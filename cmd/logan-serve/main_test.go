package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"logan"
	"logan/internal/seq"
)

// testServerCfg builds a serve stack with the given config; cleanup order
// matters: the coalescer must drain before the listener and engine close.
func testServerCfg(t *testing.T, cfg serveConfig) (*httptest.Server, *server, *logan.Aligner) {
	t.Helper()
	eng, err := logan.NewAligner(logan.DefaultOptions(50))
	if err != nil {
		t.Fatal(err)
	}
	s := newServer(eng, cfg)
	srv := httptest.NewServer(s)
	t.Cleanup(func() {
		s.Close()
		srv.Close()
		eng.Close()
	})
	return srv, s, eng
}

func testServer(t *testing.T) (*httptest.Server, *logan.Aligner) {
	t.Helper()
	cfg := defaultServeConfig()
	cfg.maxPairs = 1000
	cfg.maxWait = time.Millisecond
	srv, _, eng := testServerCfg(t, cfg)
	return srv, eng
}

func postAlign(t *testing.T, url string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/align", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func TestServeAlign(t *testing.T) {
	srv, _ := testServer(t)
	resp, data := postAlign(t, srv.URL,
		`{"pairs":[{"query":"ACGTACGTACGTACGT","target":"ACGTACGTACGTACGT","seedQ":4,"seedT":4,"seedLen":4}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var out alignResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Alignments) != 1 {
		t.Fatalf("alignments: %+v", out)
	}
	want, err := logan.AlignPair(
		[]byte("ACGTACGTACGTACGT"), []byte("ACGTACGTACGTACGT"), 4, 4, 4,
		logan.DefaultOptions(50))
	if err != nil {
		t.Fatal(err)
	}
	got := out.Alignments[0]
	if got.Score != want.Score || got.QBegin != want.QBegin || got.QEnd != want.QEnd {
		t.Fatalf("served %+v, want %+v", got, want)
	}
	if out.Stats.Pairs != 1 || out.Stats.WallNS <= 0 {
		t.Fatalf("stats %+v", out.Stats)
	}
}

func TestServeErrors(t *testing.T) {
	srv, _ := testServer(t)
	for _, tc := range []struct {
		name, body string
		status     int
	}{
		{"malformed json", `{"pairs":`, http.StatusBadRequest},
		{"trailing garbage", `{"pairs":[]} GARBAGE`, http.StatusBadRequest},
		{"second json document", `{"pairs":[]} {"pairs":[]}`, http.StatusBadRequest},
		{"invalid base", `{"pairs":[{"query":"AXGT","target":"ACGT","seedLen":2}]}`, http.StatusUnprocessableEntity},
		{"seed out of range", `{"pairs":[{"query":"ACGT","target":"ACGT","seedQ":3,"seedLen":4}]}`, http.StatusUnprocessableEntity},
		{"seed position overflow", `{"pairs":[{"query":"ACGT","target":"ACGT","seedQ":9223372036854775806,"seedLen":4}]}`, http.StatusUnprocessableEntity},
		{"oversized batch", func() string {
			var b strings.Builder
			b.WriteString(`{"pairs":[`)
			for i := 0; i < 1001; i++ {
				if i > 0 {
					b.WriteByte(',')
				}
				b.WriteString(`{"query":"ACGT","target":"ACGT","seedLen":2}`)
			}
			b.WriteString(`]}`)
			return b.String()
		}(), http.StatusRequestEntityTooLarge},
	} {
		resp, data := postAlign(t, srv.URL, tc.body)
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d (want %d): %s", tc.name, resp.StatusCode, tc.status, data)
		}
	}
	// Trailing whitespace after the document is not garbage.
	resp, data := postAlign(t, srv.URL, `{"pairs":[]}`+"\n  \n")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("trailing whitespace: status %d: %s", resp.StatusCode, data)
	}
}

// TestServeOversizedBody pins the 413 contract: a body over the wire limit
// must not surface as a generic 400 decode error.
func TestServeOversizedBody(t *testing.T) {
	cfg := defaultServeConfig()
	cfg.bodyLimit = 128
	cfg.maxWait = time.Millisecond
	srv, _, _ := testServerCfg(t, cfg)

	big := fmt.Sprintf(`{"pairs":[{"query":%q,"target":%q,"seedLen":4}]}`,
		strings.Repeat("ACGT", 100), strings.Repeat("ACGT", 100))
	resp, data := postAlign(t, srv.URL, big)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d (want 413): %s", resp.StatusCode, data)
	}
	if !strings.Contains(string(data), "128-byte limit") {
		t.Fatalf("413 body does not name the limit: %s", data)
	}
	// A body under the limit still works.
	resp, data = postAlign(t, srv.URL, `{"pairs":[]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("small body after big: status %d: %s", resp.StatusCode, data)
	}
}

// failingWriter is a ResponseWriter whose client is gone: every write
// fails. It drives the WriteErrors accounting deterministically.
type failingWriter struct {
	h    http.Header
	code int
}

func (f *failingWriter) Header() http.Header       { return f.h }
func (f *failingWriter) WriteHeader(code int)      { f.code = code }
func (f *failingWriter) Write([]byte) (int, error) { return 0, errors.New("client gone") }

// TestServeWriteErrors checks that response-encoding failures are counted
// and surfaced in /statz rather than silently dropped.
func TestServeWriteErrors(t *testing.T) {
	eng, err := logan.NewAligner(logan.DefaultOptions(50))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	cfg := defaultServeConfig()
	cfg.maxWait = time.Millisecond
	s := newServer(eng, cfg)
	defer s.Close()

	req := httptest.NewRequest("POST", "/align",
		strings.NewReader(`{"pairs":[{"query":"ACGTACGT","target":"ACGTACGT","seedLen":4}]}`))
	fw := &failingWriter{h: make(http.Header)}
	s.ServeHTTP(fw, req)
	if got := s.totals.WriteErrors.Load(); got != 1 {
		t.Fatalf("WriteErrors = %d, want 1", got)
	}

	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/statz", nil))
	var totals statzJSON
	if err := json.NewDecoder(rec.Body).Decode(&totals); err != nil {
		t.Fatal(err)
	}
	if totals.WriteErrors != 1 {
		t.Fatalf("statz writeErrors = %d, want 1: %+v", totals.WriteErrors, totals)
	}
	// The alignment itself ran; only delivery failed.
	if totals.Pairs != 1 {
		t.Fatalf("statz pairs = %d, want 1", totals.Pairs)
	}
}

// TestServeShed pins the admission-control contract: once the pending
// budget is full, requests get 429 with a Retry-After header, and the
// queued requests still complete when the coalescer drains.
func TestServeShed(t *testing.T) {
	cfg := defaultServeConfig()
	cfg.coalescePairs = 1000 // never size-flush
	cfg.maxWait = 10 * time.Second
	cfg.maxPending = 4
	srv, s, _ := testServerCfg(t, cfg)

	pairBody := func(n int) string {
		var b strings.Builder
		b.WriteString(`{"pairs":[`)
		for i := 0; i < n; i++ {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(`{"query":"ACGTACGTACGTACGT","target":"ACGTACGTACGTACGT","seedQ":4,"seedT":4,"seedLen":4}`)
		}
		b.WriteString(`]}`)
		return b.String()
	}

	type result struct {
		status int
		body   string
	}
	queued := make(chan result, 1)
	go func() {
		resp, err := http.Post(srv.URL+"/align", "application/json",
			strings.NewReader(pairBody(3)))
		if err != nil {
			queued <- result{status: -1, body: err.Error()}
			return
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		queued <- result{status: resp.StatusCode, body: string(data)}
	}()

	// Wait until the 3 pairs are visibly queued before overflowing.
	deadline := time.Now().Add(10 * time.Second)
	for s.coal.Metrics().QueuedPairs != 3 {
		if time.Now().After(deadline) {
			t.Fatalf("request never queued: %+v", s.coal.Metrics())
		}
		time.Sleep(time.Millisecond)
	}

	resp, err := http.Post(srv.URL+"/align", "application/json", strings.NewReader(pairBody(2)))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow status %d (want 429): %s", resp.StatusCode, data)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "10" {
		t.Fatalf("Retry-After %q, want %q", ra, "10")
	}

	// Draining the coalescer completes the queued request with 200.
	s.Close()
	r := <-queued
	if r.status != http.StatusOK {
		t.Fatalf("queued request: status %d: %s", r.status, r.body)
	}

	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/statz", nil))
	var totals statzJSON
	if err := json.NewDecoder(rec.Body).Decode(&totals); err != nil {
		t.Fatal(err)
	}
	if totals.Shed != 1 || totals.Coalescer == nil || totals.Coalescer.Shed != 1 {
		t.Fatalf("statz shed accounting: %+v (coalescer %+v)", totals, totals.Coalescer)
	}
	if totals.Coalescer.DrainFlushes == 0 {
		t.Fatalf("statz drain flush missing: %+v", totals.Coalescer)
	}
}

func TestServeHealthAndStatz(t *testing.T) {
	srv, _ := testServer(t)
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}

	postAlign(t, srv.URL, `{"pairs":[{"query":"ACGTACGT","target":"ACGTACGT","seedLen":4}]}`)
	resp, err = http.Get(srv.URL + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var totals statzJSON
	if err := json.NewDecoder(resp.Body).Decode(&totals); err != nil {
		t.Fatal(err)
	}
	if totals.Requests < 1 || totals.Pairs < 1 || totals.Cells < 1 {
		t.Fatalf("statz %+v", totals)
	}
	// The per-backend breakdown must cover the served pairs: the test
	// engine is CPU-backed, so everything lands on the "cpu" worker.
	cpu, ok := totals.Backends["cpu"]
	if !ok || cpu.Pairs < 1 || cpu.Cells < 1 {
		t.Fatalf("statz backends %+v", totals.Backends)
	}
	// Coalescing is on in the test server, so the merged-batch counters
	// must account for the aligned request.
	c := totals.Coalescer
	if c == nil || c.MergedBatches < 1 || c.MergedPairs < 1 {
		t.Fatalf("statz coalescer %+v", c)
	}
}

// TestServeConcurrentRequests hammers the shared engine from many client
// goroutines; run with -race this is the serve-mode acceptance check. Each
// client posts a distinct pair set and must get exactly its own alignments
// back, bit-identical to a direct engine call — the HTTP-level scatter
// correctness check for the coalescing layer.
func TestServeConcurrentRequests(t *testing.T) {
	srv, eng := testServer(t)

	const clients, perClient = 8, 10
	type workload struct {
		body string
		want []logan.Alignment
	}
	loads := make([]workload, clients)
	for c := range loads {
		rng := rand.New(rand.NewSource(int64(100 + c)))
		raw := seq.RandPairSet(rng, seq.PairSetOptions{
			N: 2 + c%3, MinLen: 80, MaxLen: 200, ErrorRate: 0.15, SeedLen: 17,
		})
		pairs := make([]logan.Pair, len(raw))
		js := make([]string, len(raw))
		for i, p := range raw {
			pairs[i] = logan.Pair{
				Query: []byte(p.Query), Target: []byte(p.Target),
				SeedQ: p.SeedQPos, SeedT: p.SeedTPos, SeedLen: p.SeedLen,
			}
			js[i] = fmt.Sprintf(`{"query":%q,"target":%q,"seedQ":%d,"seedT":%d,"seedLen":%d}`,
				p.Query, p.Target, p.SeedQPos, p.SeedTPos, p.SeedLen)
		}
		want, _, err := eng.Align(pairs)
		if err != nil {
			t.Fatal(err)
		}
		loads[c] = workload{
			body: `{"pairs":[` + strings.Join(js, ",") + `]}`,
			want: want,
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, clients*perClient)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				resp, err := http.Post(srv.URL+"/align", "application/json",
					bytes.NewReader([]byte(loads[c].body)))
				if err != nil {
					errs <- err
					return
				}
				var out alignResponse
				err = json.NewDecoder(resp.Body).Decode(&out)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				if len(out.Alignments) != len(loads[c].want) {
					errs <- fmt.Errorf("client %d: %d alignments, want %d",
						c, len(out.Alignments), len(loads[c].want))
					return
				}
				for j, a := range out.Alignments {
					w := loads[c].want[j]
					if a.Score != w.Score || a.QBegin != w.QBegin || a.QEnd != w.QEnd ||
						a.TBegin != w.TBegin || a.TEnd != w.TEnd || a.Cells != w.Cells {
						errs <- fmt.Errorf("client %d pair %d: served %+v, want %+v", c, j, a, w)
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	resp, err := http.Get(srv.URL + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var totals statzJSON
	if err := json.NewDecoder(resp.Body).Decode(&totals); err != nil {
		t.Fatal(err)
	}
	if totals.Errors != 0 {
		t.Fatalf("statz errors %d: %+v", totals.Errors, totals)
	}
	c := totals.Coalescer
	if c == nil || c.MergedRequests != clients*perClient || c.QueuedPairs != 0 {
		t.Fatalf("statz coalescer %+v: want %d merged requests, empty queue", c, clients*perClient)
	}
}

// TestServePerRequestPath checks the -coalesce=false escape hatch still
// serves correctly and reports per-backend stats from the handler path.
func TestServePerRequestPath(t *testing.T) {
	cfg := defaultServeConfig()
	cfg.coalesce = false
	srv, _, _ := testServerCfg(t, cfg)
	resp, data := postAlign(t, srv.URL,
		`{"pairs":[{"query":"ACGTACGTACGTACGT","target":"ACGTACGTACGTACGT","seedQ":4,"seedT":4,"seedLen":4}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var totals statzJSON
	r2, err := http.Get(srv.URL + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	if err := json.NewDecoder(r2.Body).Decode(&totals); err != nil {
		t.Fatal(err)
	}
	if totals.Coalescer != nil {
		t.Fatalf("coalescer stats present with coalescing off: %+v", totals.Coalescer)
	}
	if cpu, ok := totals.Backends["cpu"]; !ok || cpu.Pairs < 1 {
		t.Fatalf("per-request backend stats missing: %+v", totals.Backends)
	}
}
