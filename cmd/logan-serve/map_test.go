package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"testing"
	"time"

	"logan"
	"logan/internal/genome"
)

// mapTestData simulates a reference and reads for the serve-tier mapping
// tests.
func mapTestData(t *testing.T) (refFasta string, readsFasta string, reads []logan.Read) {
	t.Helper()
	rng := rand.New(rand.NewSource(3))
	g := genome.Synthetic(rng, "chr1", genome.SyntheticOptions{Length: 50_000})
	rs := genome.Simulate(rng, g, genome.SimOptions{
		Coverage: 1, MinLen: 500, MaxLen: 1200, ErrorRate: 0.03,
	})
	var fa strings.Builder
	for _, r := range rs.Reads {
		fmt.Fprintf(&fa, ">%s\n%s\n", r.Name(), r.Seq)
		reads = append(reads, logan.Read{Name: r.Name(), Seq: r.Seq})
	}
	return ">" + g.Name + "\n" + g.Seq.String() + "\n", fa.String(), reads
}

// waitIndexReady polls GET /map/index until the async build lands.
func waitIndexReady(t *testing.T, url string) mapStatusJSON {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(url + "/map/index")
		if err != nil {
			t.Fatal(err)
		}
		var st mapStatusJSON
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		switch st.State {
		case "ready":
			return st
		case "failed":
			t.Fatalf("index build failed: %s", st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("index not ready within 30s (state %q)", st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestMapEndpointMatchesOffline is the serve-tier identity gate: the PAF
// bytes POST /map returns must equal what logan.Mapper.Map + WritePAF
// produce offline for the same reads and index parameters.
func TestMapEndpointMatchesOffline(t *testing.T) {
	refFasta, readsFasta, reads := mapTestData(t)
	srv, s, eng := testServerCfg(t, defaultServeConfig())
	waitReady(t, srv.URL)

	// No index yet: /map must 409, and the status endpoint reports none.
	resp, err := http.Post(srv.URL+"/map", "text/plain", strings.NewReader(readsFasta))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("POST /map without index: status %d, want 409", resp.StatusCode)
	}
	st := func() mapStatusJSON {
		resp, err := http.Get(srv.URL + "/map/index")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var st mapStatusJSON
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		return st
	}()
	if st.State != "none" {
		t.Fatalf("fresh index state %q, want none", st.State)
	}

	// Async build, then poll to ready.
	resp, err = http.Post(srv.URL+"/map/index?k=15&w=10", "text/plain", strings.NewReader(refFasta))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /map/index: status %d, want 202", resp.StatusCode)
	}
	ready := waitIndexReady(t, srv.URL)
	if ready.Stats == nil || ready.Stats.Refs != 1 || ready.Stats.K != 15 {
		t.Fatalf("ready stats %+v", ready.Stats)
	}

	resp, err = http.Post(srv.URL+"/map?x=80", "text/plain", strings.NewReader(readsFasta))
	if err != nil {
		t.Fatal(err)
	}
	served, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /map: status %d: %s", resp.StatusCode, served)
	}
	if len(served) == 0 {
		t.Fatal("POST /map returned no PAF records")
	}
	if got := resp.Header.Get("X-Logan-Map-Mapped"); got == "" || got == "0" {
		t.Fatalf("X-Logan-Map-Mapped = %q", got)
	}

	// Offline reference: same engine family, a coalescer-routed mapper
	// (matching the server's default coalesce=true) over an index built
	// from the same FASTA with the same parameters.
	offline, err := logan.NewMapper(eng, logan.MapperOptions{Coalescer: s.coal})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := offline.Build(context.Background(), strings.NewReader(refFasta), logan.IndexOptions{K: 15, W: 10}); err != nil {
		t.Fatal(err)
	}
	res, err := offline.Map(context.Background(), reads, logan.DefaultMapConfig(80))
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := logan.WritePAF(&want, res.Records); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(served, want.Bytes()) {
		t.Fatalf("served PAF differs from offline Mapper.Map output (%d vs %d bytes)",
			len(served), want.Len())
	}

	// The /statz map block reflects the run.
	resp, err = http.Get(srv.URL + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	var statz statzJSON
	if err := json.NewDecoder(resp.Body).Decode(&statz); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if statz.Map == nil || statz.Map.Reads == 0 || statz.Map.Records == 0 || statz.Map.Index.State != "ready" {
		t.Fatalf("statz map block %+v", statz.Map)
	}

	// And the Prometheus view carries the logan_map_* series.
	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, series := range []string{"logan_map_reads_total", "logan_map_anchors_total", "logan_map_index_occupancy"} {
		if !bytes.Contains(metrics, []byte(series)) {
			t.Fatalf("/metrics missing %s", series)
		}
	}
}

func TestMapEndpointErrors(t *testing.T) {
	refFasta, _, _ := mapTestData(t)
	cfg := defaultServeConfig()
	srv, s, _ := testServerCfg(t, cfg)
	waitReady(t, srv.URL)

	if _, err := s.maps.mapper.Build(context.Background(), strings.NewReader(refFasta), logan.IndexOptions{}); err != nil {
		t.Fatal(err)
	}
	post := func(path, body string) *http.Response {
		t.Helper()
		resp, err := http.Post(srv.URL+path, "text/plain", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp
	}
	if resp := post("/map?x=abc", ">r\nACGT\n"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad x: status %d, want 400", resp.StatusCode)
	}
	if resp := post("/map?x=1000000", ">r\nACGT\n"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("x over -max-x: status %d, want 400", resp.StatusCode)
	}
	if resp := post("/map", ">r\nAC!T\n"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad FASTA: status %d, want 400", resp.StatusCode)
	}
	if resp := post("/map/index?k=99", refFasta); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("bad k: status %d, want 202 (async failure)", resp.StatusCode)
	}
	// k=99 exceeds the packer's limit: the build must land in "failed"
	// while the previously installed index keeps serving.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := func() mapStatusJSON {
			resp, err := http.Get(srv.URL + "/map/index")
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			var st mapStatusJSON
			if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
				t.Fatal(err)
			}
			return st
		}()
		if st.State == "failed" {
			if st.Error == "" {
				t.Fatal("failed state with no error")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("build with k=99 never failed (state %q)", st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !s.maps.mapper.Ready() {
		t.Fatal("failed rebuild evicted the previously installed index")
	}
	if resp := post("/map", ">r\nACGTACGTACGTACGTACGT\n"); resp.StatusCode != http.StatusOK {
		t.Fatalf("/map after failed rebuild: status %d, want 200", resp.StatusCode)
	}
}

func TestMapDisabled(t *testing.T) {
	cfg := defaultServeConfig()
	cfg.maps = false
	// defaultServeConfig enables maps; zeroing the flag must remove the
	// routes entirely.
	srv, _, _ := testServerCfg(t, cfg)
	waitReady(t, srv.URL)
	resp, err := http.Post(srv.URL+"/map", "text/plain", strings.NewReader(">r\nACGT\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("disabled /map: status %d, want 404", resp.StatusCode)
	}
}
