package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"logan"
)

// writeKeys writes an API key file for tests.
func writeKeys(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "keys.conf")
	if err := os.WriteFile(path, []byte(content), 0o600); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadAPIKeys(t *testing.T) {
	path := writeKeys(t, `
# comment line
secret-alpha alpha 1000 50 3
secret-beta  beta  0
secret-gamma gamma
`)
	keys, err := loadAPIKeys(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 3 {
		t.Fatalf("parsed %d keys, want 3", len(keys))
	}
	if ten := keys["secret-alpha"]; ten == nil || ten.Name() != "alpha" || ten.Weight() != 3 {
		t.Fatalf("alpha: %+v", ten)
	}
	if ten := keys["secret-gamma"]; ten == nil || ten.Name() != "gamma" || ten.Weight() != 1 {
		t.Fatalf("gamma: %+v", ten)
	}

	for name, content := range map[string]string{
		"missing name":     "keyonly\n",
		"too many fields":  "k n 1 2 3 4\n",
		"bad rate":         "k n notanumber\n",
		"negative rate":    "k n -5\n",
		"bad burst":        "k n 10 x\n",
		"bad weight":       "k n 10 20 x\n",
		"unsafe name":      "k bad name!{}\n",
		"reserved name":    "k anonymous\n",
		"duplicate key":    "k a\nk b\n",
		"duplicate tenant": "k1 a\nk2 a\n",
	} {
		if _, err := loadAPIKeys(writeKeys(t, content)); err == nil {
			t.Errorf("%s: accepted %q", name, content)
		}
	}
	if _, err := loadAPIKeys(filepath.Join(t.TempDir(), "absent")); err == nil {
		t.Error("missing file accepted")
	}
}

// alignBody builds a /align payload of n distinct pairs (distinct so the
// result cache cannot absorb them; quota tests need every pair metered).
func alignBody(n, salt int) string {
	var b strings.Builder
	b.WriteString(`{"pairs":[`)
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		// Vary the seed position so each pair digests differently.
		fmt.Fprintf(&b, `{"query":"ACGTACGTACGTACGTACGTACGTACGTACGT","target":"ACGTACGTACGTACGTACGTACGTACGTACGT","seedQ":%d,"seedT":%d,"seedLen":4}`,
			(salt+i)%28, (salt+i)%28)
	}
	b.WriteString(`]}`)
	return b.String()
}

// postAs posts a /align body with the given API key header ("" = none).
func postAs(t *testing.T, url, key, body string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest("POST", url+"/align", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if key != "" {
		req.Header.Set("X-API-Key", key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// TestServeMultiTenant drives an API-keyed server end to end: auth
// resolution (header forms, 401, anonymous default), per-tenant quota
// sheds with trace attribution, and the per-tenant metric series.
func TestServeMultiTenant(t *testing.T) {
	keys, err := loadAPIKeys(writeKeys(t, `
alpha-key alpha
beta-key  beta 0.001 4
`))
	if err != nil {
		t.Fatal(err)
	}
	cfg := defaultServeConfig()
	cfg.defCfg = logan.DefaultConfig(50)
	cfg.maxWait = time.Millisecond
	cfg.apiKeys = keys
	srv, _, _ := testServerCfg(t, cfg)

	// Unknown key: refused, never downgraded to anonymous.
	resp, _ := postAs(t, srv.URL, "wrong-key", alignBody(1, 0))
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unknown key: status %d, want 401", resp.StatusCode)
	}
	// No credentials on a keyed server: the shared anonymous tenant.
	resp, data := postAs(t, srv.URL, "", alignBody(1, 0))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("anonymous: status %d: %s", resp.StatusCode, data)
	}
	// X-API-Key and Authorization: Bearer resolve the same tenant.
	resp, data = postAs(t, srv.URL, "alpha-key", alignBody(2, 1))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("alpha: status %d: %s", resp.StatusCode, data)
	}
	req, err := http.NewRequest("POST", srv.URL+"/align", strings.NewReader(alignBody(1, 9)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Authorization", "Bearer alpha-key")
	bresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, bresp.Body)
	bresp.Body.Close()
	if bresp.StatusCode != http.StatusOK {
		t.Fatalf("bearer alpha: status %d", bresp.StatusCode)
	}

	// beta's bucket holds 4 pairs and refills at 1/1000s: the first 4
	// pass, the next distinct pair sheds on quota with full attribution —
	// 429, Retry-After, and a trace ending in a shed span.
	resp, data = postAs(t, srv.URL, "beta-key", alignBody(4, 20))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("beta within burst: status %d: %s", resp.StatusCode, data)
	}
	resp, data = postAs(t, srv.URL, "beta-key", alignBody(1, 40))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("beta past burst: status %d: %s", resp.StatusCode, data)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("shed response missing Retry-After")
	}
	if trh := resp.Header.Get("X-Logan-Trace"); !strings.Contains(trh, "shed=") {
		t.Errorf("shed response X-Logan-Trace %q missing shed span", trh)
	}

	// /statz attributes the traffic per tenant and counts the quota shed.
	sresp, err := http.Get(srv.URL + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	var stz statzJSON
	err = json.NewDecoder(sresp.Body).Decode(&stz)
	sresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if stz.Coalescer == nil || stz.Coalescer.ShedQuota != 1 {
		t.Errorf("statz coalescer %+v: want one quota shed", stz.Coalescer)
	}
	alpha := stz.Tenants["alpha"]
	if alpha.Pairs != 3 || alpha.Requests != 2 || alpha.Shed != 0 {
		t.Errorf("alpha tenant block %+v", alpha)
	}
	beta := stz.Tenants["beta"]
	if beta.Pairs != 4 || beta.Shed != 1 {
		t.Errorf("beta tenant block %+v", beta)
	}
	if anon := stz.Tenants["anonymous"]; anon.Pairs != 1 {
		t.Errorf("anonymous tenant block %+v", anon)
	}

	// /metrics carries the same attribution as labeled series.
	text := scrape(t, srv.URL)
	for _, want := range []string{
		`logan_tenant_pairs_total{tenant="alpha"} 3`,
		`logan_tenant_shed_total{tenant="beta"} 1`,
		`logan_coalescer_shed_total{reason="quota"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// The job API shares the key space: an unknown key is refused there
	// too.
	jreq, err := http.NewRequest("POST", srv.URL+"/jobs?x=50", strings.NewReader(">r1\nACGT\n"))
	if err != nil {
		t.Fatal(err)
	}
	jreq.Header.Set("X-API-Key", "wrong-key")
	jresp, err := http.DefaultClient.Do(jreq)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, jresp.Body)
	jresp.Body.Close()
	if jresp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("jobs unknown key: status %d, want 401", jresp.StatusCode)
	}
}
