package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"

	"logan"
)

// mapTier is the server's reference-mapping subsystem: one shared
// logan.Mapper over the engine (coalescer-routed when coalescing is on,
// so mapping extension batches share QoS lanes with /align and /jobs
// traffic) plus the single-slot asynchronous index build behind
// POST /map/index. Index installation is an atomic swap inside the
// Mapper, so /map requests keep serving the previous index while a
// rebuild runs.
type mapTier struct {
	mapper *logan.Mapper

	// mu guards the build slot: one index build runs at a time (a build
	// holds the whole reference and its minimizer table in flight; a
	// second concurrent one would double that for no better outcome).
	mu       sync.Mutex
	building bool
	buildErr string // last failed build's error ("" when none)
	started  time.Time
}

// mapStatusJSON is the GET /map/index payload.
type mapStatusJSON struct {
	// State is "none" (no index installed), "building" (a build or swap
	// is in flight; any previously installed index keeps serving),
	// "ready", or "failed" (last build errored; Error has the cause and
	// any previously installed index keeps serving).
	State string `json:"state"`
	Error string `json:"error,omitempty"`
	// BuildingForSec reports how long the in-flight build has been
	// running.
	BuildingForSec float64           `json:"buildingForSec,omitempty"`
	Stats          *logan.IndexStats `json:"stats,omitempty"`
}

// status snapshots the tier's state for GET /map/index and /statz.
func (mt *mapTier) status() mapStatusJSON {
	mt.mu.Lock()
	building, buildErr, started := mt.building, mt.buildErr, mt.started
	mt.mu.Unlock()
	out := mapStatusJSON{State: "none"}
	if st, ok := mt.mapper.IndexStats(); ok {
		out.State = "ready"
		out.Stats = &st
	}
	if buildErr != "" {
		out.State = "failed"
		out.Error = buildErr
	}
	if building {
		out.State = "building"
		out.BuildingForSec = time.Since(started).Seconds()
	}
	return out
}

// tryStartBuild claims the build slot; ok is false when a build is
// already running.
func (mt *mapTier) tryStartBuild() bool {
	mt.mu.Lock()
	defer mt.mu.Unlock()
	if mt.building {
		return false
	}
	mt.building = true
	mt.buildErr = ""
	mt.started = time.Now()
	return true
}

// finishBuild releases the build slot, recording the failure if any.
func (mt *mapTier) finishBuild(err error) {
	mt.mu.Lock()
	defer mt.mu.Unlock()
	mt.building = false
	if err != nil {
		mt.buildErr = err.Error()
	}
}

// queryIndexOptions parses k/w/maxOcc from URL query parameters.
func queryIndexOptions(q url.Values) (logan.IndexOptions, error) {
	var opt logan.IndexOptions
	var err error
	geti := func(key string, dst *int) {
		if v := q.Get(key); v != "" && err == nil {
			*dst, err = strconv.Atoi(v)
			if err != nil {
				err = fmt.Errorf("query parameter %s=%q: %w", key, v, err)
			}
		}
	}
	geti("k", &opt.K)
	geti("w", &opt.W)
	geti("maxOcc", &opt.MaxOccurrence)
	return opt, err
}

// queryMapConfig resolves a /map request's configuration: the server's
// default X (overridable per request, capped at -max-x like /align) with
// the chaining and placement knobs exposed as query parameters.
func (s *server) queryMapConfig(q url.Values) (logan.MapConfig, error) {
	cfg := logan.DefaultMapConfig(s.defCfg.X)
	var err error
	geti := func(key string, dst *int) {
		if v := q.Get(key); v != "" && err == nil {
			*dst, err = strconv.Atoi(v)
			if err != nil {
				err = fmt.Errorf("query parameter %s=%q: %w", key, v, err)
			}
		}
	}
	if v := q.Get("x"); v != "" {
		xv, perr := strconv.ParseInt(v, 10, 32)
		if perr != nil {
			return cfg, fmt.Errorf("query parameter x=%q: %w", v, perr)
		}
		if int32(xv) > s.maxX {
			return cfg, fmt.Errorf("x %d exceeds the server's %d limit", xv, s.maxX)
		}
		cfg.X = int32(xv)
	}
	var maxGap int
	geti("maxGap", &maxGap)
	cfg.MaxGap = int32(maxGap)
	var minScore int
	geti("minChainScore", &minScore)
	cfg.MinChainScore = int32(minScore)
	geti("minChainAnchors", &cfg.MinChainAnchors)
	if v := q.Get("maxSecondary"); v != "" && err == nil {
		cfg.MaxSecondary, err = strconv.Atoi(v)
		if err != nil {
			err = fmt.Errorf("query parameter maxSecondary=%q: %w", v, err)
		}
	}
	if err != nil {
		return cfg, err
	}
	return cfg, cfg.Validate()
}

// handleMap is POST /map: the body is FASTA reads, the response their
// placements in PAF — byte-identical to what logan.Mapper.Map +
// WritePAF produce offline for the same reads and index, because this
// handler is exactly that call. 409 until an index is installed.
func (s *server) handleMap(w http.ResponseWriter, r *http.Request) {
	s.m.requests.Inc()
	if s.maps == nil {
		s.fail(w, http.StatusNotFound, "mapping API disabled (-map=false)")
		return
	}
	if !s.maps.mapper.Ready() {
		s.fail(w, http.StatusConflict, "no reference index installed (POST /map/index or start with -map-ref)")
		return
	}
	cfg, err := s.queryMapConfig(r.URL.Query())
	if err != nil {
		s.fail(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	res, err := s.maps.mapper.MapFasta(r.Context(), http.MaxBytesReader(w, r.Body, s.bodyLimit), cfg)
	if err != nil {
		var tooBig *http.MaxBytesError
		switch {
		case errors.As(err, &tooBig):
			s.fail(w, http.StatusRequestEntityTooLarge,
				"request body exceeds the %d-byte limit", tooBig.Limit)
		case errors.Is(err, logan.ErrOverloaded):
			s.m.shed.Inc()
			w.Header().Set("Retry-After", s.alignRetryAfter())
			s.fail(w, http.StatusTooManyRequests, "overloaded: %v", err)
		case r.Context().Err() != nil:
			s.fail(w, http.StatusRequestTimeout, "map: %v", err)
		default:
			s.fail(w, http.StatusBadRequest, "map: %v", err)
		}
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Header().Set("X-Logan-Map-Reads", strconv.Itoa(res.Stats.Reads))
	w.Header().Set("X-Logan-Map-Mapped", strconv.Itoa(res.Stats.Mapped))
	if err := logan.WritePAF(w, res.Records); err != nil {
		s.m.writeErrors.Inc()
	}
}

// handleMapIndexBuild is POST /map/index: the body is the reference
// FASTA, k/w/maxOcc ride the query string, and the build runs
// asynchronously — 202 immediately, progress via GET /map/index. Only
// one build runs at a time (409 while one is in flight); on success the
// new index swaps in atomically and /map requests started before the
// swap finish against the index they began with.
func (s *server) handleMapIndexBuild(w http.ResponseWriter, r *http.Request) {
	s.m.requests.Inc()
	if s.maps == nil {
		s.fail(w, http.StatusNotFound, "mapping API disabled (-map=false)")
		return
	}
	opt, err := queryIndexOptions(r.URL.Query())
	if err != nil {
		s.fail(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	if !s.maps.tryStartBuild() {
		s.fail(w, http.StatusConflict, "an index build is already running")
		return
	}
	// Buffer the upload before returning 202: the request body dies with
	// the handler, but the build outlives it. Malformed FASTA surfaces as
	// state "failed" on GET /map/index, like any other build error.
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.bodyLimit))
	if err != nil {
		s.maps.finishBuild(nil)
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.fail(w, http.StatusRequestEntityTooLarge,
				"request body exceeds the %d-byte limit", tooBig.Limit)
			return
		}
		s.fail(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	go func() {
		_, err := s.maps.mapper.Build(context.Background(), bytes.NewReader(body), opt)
		s.maps.finishBuild(err)
	}()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	fmt.Fprintln(w, `{"status":"building"}`)
}

// handleMapIndexStatus is GET /map/index.
func (s *server) handleMapIndexStatus(w http.ResponseWriter, _ *http.Request) {
	s.m.requests.Inc()
	if s.maps == nil {
		s.fail(w, http.StatusNotFound, "mapping API disabled (-map=false)")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(s.maps.status()); err != nil {
		s.m.writeErrors.Inc()
	}
}

// mapStatzJSON is the "map" block of /statz: lifetime mapping totals
// from the registry plus the live index state.
type mapStatzJSON struct {
	Reads      int64         `json:"reads"`
	Mapped     int64         `json:"mapped"`
	Anchors    int64         `json:"anchors"`
	Chains     int64         `json:"chains"`
	Extensions int64         `json:"extensions"`
	Records    int64         `json:"records"`
	Shed       int64         `json:"shed"`
	Retries    int64         `json:"retries"`
	Index      mapStatusJSON `json:"index"`
}
