package main

import (
	"fmt"
	"net/http"
	"os"
	"regexp"
	"strconv"
	"strings"

	"logan"
)

// tenantNameRE constrains tenant names to label-safe characters: the
// name becomes the tenant="..." label value on per-tenant metric series,
// so it must never need escaping in the exposition format.
var tenantNameRE = regexp.MustCompile(`^[A-Za-z0-9_.-]+$`)

// loadAPIKeys parses the -api-keys file into a key -> tenant map. Each
// non-blank, non-comment line is
//
//	<key> <name> [pairsPerSec [burst [weight]]]
//
// whitespace-separated: the secret the client presents, the tenant name
// it resolves to (label-safe: [A-Za-z0-9_.-]), and the optional quota
// triple — pairs/sec refill rate (0 = unlimited), token-bucket burst
// (0 = 2x rate) and fair-share weight (0 = 1). Lines starting with #
// are comments. Duplicate keys and duplicate tenant names are rejected:
// a duplicate key would silently shadow a quota, and a duplicate name
// would merge two principals into one metric series and one bucket.
func loadAPIKeys(path string) (map[string]*logan.Tenant, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	keys := make(map[string]*logan.Tenant)
	names := make(map[string]bool)
	for ln, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 2 || len(f) > 5 {
			return nil, fmt.Errorf("%s:%d: want \"key name [pairsPerSec [burst [weight]]]\", got %d fields", path, ln+1, len(f))
		}
		key, name := f[0], f[1]
		if !tenantNameRE.MatchString(name) {
			return nil, fmt.Errorf("%s:%d: tenant name %q is not label-safe (want %s)", path, ln+1, name, tenantNameRE)
		}
		if name == "anonymous" {
			return nil, fmt.Errorf("%s:%d: tenant name %q is reserved for unauthenticated traffic", path, ln+1, name)
		}
		if keys[key] != nil {
			return nil, fmt.Errorf("%s:%d: duplicate API key", path, ln+1)
		}
		if names[name] {
			return nil, fmt.Errorf("%s:%d: duplicate tenant name %q", path, ln+1, name)
		}
		opt := logan.TenantOptions{Name: name}
		if len(f) > 2 {
			if opt.PairsPerSec, err = strconv.ParseFloat(f[2], 64); err != nil || opt.PairsPerSec < 0 {
				return nil, fmt.Errorf("%s:%d: pairsPerSec %q: want a non-negative number", path, ln+1, f[2])
			}
		}
		if len(f) > 3 {
			if opt.Burst, err = strconv.Atoi(f[3]); err != nil || opt.Burst < 0 {
				return nil, fmt.Errorf("%s:%d: burst %q: want a non-negative integer", path, ln+1, f[3])
			}
		}
		if len(f) > 4 {
			if opt.Weight, err = strconv.Atoi(f[4]); err != nil || opt.Weight < 0 {
				return nil, fmt.Errorf("%s:%d: weight %q: want a non-negative integer", path, ln+1, f[4])
			}
		}
		keys[key] = logan.NewTenant(opt)
		names[name] = true
	}
	return keys, nil
}

// tenantFor resolves the request's tenant from its credentials:
// X-API-Key, or Authorization: Bearer. On a server with no configured
// keys every request is anonymous (nil tenant — the open single-tenant
// deployment, unmetered). With keys configured, credentialless requests
// map to the shared anonymous tenant and a wrong key is refused — false
// means the caller must answer 401, never silently downgrade a typo'd
// key to the anonymous quota.
func (s *server) tenantFor(r *http.Request) (*logan.Tenant, bool) {
	if len(s.keys) == 0 {
		return nil, true
	}
	key := r.Header.Get("X-API-Key")
	if key == "" {
		if auth := r.Header.Get("Authorization"); strings.HasPrefix(auth, "Bearer ") {
			key = strings.TrimSpace(strings.TrimPrefix(auth, "Bearer "))
		}
	}
	if key == "" {
		return logan.AnonymousTenant(), true
	}
	ten, ok := s.keys[key]
	return ten, ok
}

// tenantName renders a tenant for metric labels and logs; the nil
// (unmetered) tenant reads as anonymous.
func tenantName(ten *logan.Tenant) string {
	if ten == nil {
		return "anonymous"
	}
	return ten.Name()
}
