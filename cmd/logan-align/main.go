// Command logan-align is the batch aligner CLI: it generates (or loads) a
// set of seeded read pairs and aligns them with the selected backend,
// reporting scores, timing and GCUPS — the standalone tool equivalent of
// the original LOGAN demo binary.
//
// Usage:
//
//	logan-align [-pairs 1000] [-x 100] [-backend gpu] [-gpus 2] [-seed 1]
//	            [-minlen 2500] [-maxlen 7500] [-err 0.15] [-v]
//	            [-match 1 -mismatch -1 -gap -1]
//	            [-gap-open -2 -gap-extend -1]   (affine; CPU/Hybrid only)
//	            [-matrix blosum62]              (matrix; CPU/Hybrid only)
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"logan"
	"logan/internal/seq"
)

func main() {
	var (
		nPairs  = flag.Int("pairs", 1000, "number of read pairs to align")
		x       = flag.Int("x", 100, "X-drop threshold")
		backend = flag.String("backend", "cpu", "alignment backend: cpu, gpu or hybrid")
		gpus    = flag.Int("gpus", 1, "simulated GPU count (gpu and hybrid backends)")
		seed    = flag.Int64("seed", 42, "workload RNG seed")
		minLen  = flag.Int("minlen", 2500, "minimum read length")
		maxLen  = flag.Int("maxlen", 7500, "maximum read length")
		errRate = flag.Float64("err", 0.15, "pairwise error rate")
		input   = flag.String("input", "", "pair file to align instead of a generated workload (TSV: query, target, seedQ, seedT, seedLen)")
		dump    = flag.String("dump", "", "write the generated workload to this pair file and exit")
		verbose = flag.Bool("v", false, "print per-pair results")

		match    = flag.Int("match", 1, "linear/affine match reward (> 0)")
		mismatch = flag.Int("mismatch", -1, "linear/affine mismatch penalty (< 0)")
		gap      = flag.Int("gap", -1, "linear gap penalty, or the matrix gap with -matrix (< 0)")
		gapOpen  = flag.Int("gap-open", 0, "affine gap-open penalty (< 0); with -gap-extend selects affine scoring (CPU and hybrid backends only)")
		gapExt   = flag.Int("gap-extend", 0, "affine gap-extend penalty (< 0)")
		matrix   = flag.String("matrix", "", `substitution matrix ("blosum62"); scores with the matrix and -gap as its gap penalty (CPU and hybrid backends only)`)
	)
	flag.Parse()

	cfg := logan.Config{X: int32(*x)}
	switch {
	case *matrix == "blosum62":
		if *gap >= 0 {
			fmt.Fprintf(os.Stderr, "logan-align: -matrix needs a negative -gap (got %d)\n", *gap)
			os.Exit(2)
		}
		cfg.Scoring = logan.MatrixScoring(logan.Blosum62(int32(*gap)))
	case *matrix != "":
		fmt.Fprintf(os.Stderr, "logan-align: unknown matrix %q (want blosum62)\n", *matrix)
		os.Exit(2)
	case *gapOpen != 0 || *gapExt != 0:
		cfg.Scoring = logan.AffineScoring(int32(*match), int32(*mismatch), int32(*gapOpen), int32(*gapExt))
	default:
		cfg.Scoring = logan.LinearScoring(int32(*match), int32(*mismatch), int32(*gap))
	}
	if err := cfg.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "logan-align: %v\n", err)
		os.Exit(2)
	}

	var raw []seq.Pair
	if *input != "" {
		f, err := os.Open(*input)
		if err != nil {
			fmt.Fprintf(os.Stderr, "logan-align: %v\n", err)
			os.Exit(1)
		}
		if *matrix != "" {
			// Matrix workloads are not DNA (protein residues would fail
			// the ACGTN check); the engine validates them against the
			// matrix alphabet instead.
			raw, err = seq.ReadPairsAnyAlphabet(f)
		} else {
			raw, err = seq.ReadPairs(f)
		}
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "logan-align: %v\n", err)
			os.Exit(1)
		}
	} else {
		rng := rand.New(rand.NewSource(*seed))
		raw = seq.RandPairSet(rng, seq.PairSetOptions{
			N: *nPairs, MinLen: *minLen, MaxLen: *maxLen,
			ErrorRate: *errRate, SeedLen: 17, SeedPosFrac: 0.05,
		})
	}
	if *dump != "" {
		f, err := os.Create(*dump)
		if err != nil {
			fmt.Fprintf(os.Stderr, "logan-align: %v\n", err)
			os.Exit(1)
		}
		if err := seq.WritePairs(f, raw); err != nil {
			fmt.Fprintf(os.Stderr, "logan-align: %v\n", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("wrote %d pairs to %s\n", len(raw), *dump)
		return
	}
	pairs := make([]logan.Pair, len(raw))
	for i, p := range raw {
		pairs[i] = logan.Pair{
			Query: []byte(p.Query), Target: []byte(p.Target),
			SeedQ: p.SeedQPos, SeedT: p.SeedTPos, SeedLen: p.SeedLen,
		}
	}

	opt := logan.EngineOptions{GPUs: *gpus}
	switch *backend {
	case "cpu":
	case "gpu":
		opt.Backend = logan.GPU
	case "hybrid":
		opt.Backend = logan.Hybrid
	default:
		fmt.Fprintf(os.Stderr, "unknown backend %q (want cpu, gpu or hybrid)\n", *backend)
		os.Exit(2)
	}
	eng, err := logan.NewAligner(opt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "logan-align: %v\n", err)
		os.Exit(1)
	}
	defer eng.Close()

	start := time.Now()
	results, stats, err := eng.Align(context.Background(), pairs, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "logan-align: %v\n", err)
		os.Exit(1)
	}
	if *verbose {
		for i, r := range results {
			fmt.Printf("pair %d: score=%d q=[%d,%d) t=[%d,%d) cells=%d\n",
				i, r.Score, r.QBegin, r.QEnd, r.TBegin, r.TEnd, r.Cells)
		}
	}
	fmt.Printf("aligned %d pairs with X=%d (%s scoring) on %s backend\n",
		stats.Pairs, *x, cfg.Scoring.Mode(), *backend)
	fmt.Printf("  DP cells:     %d\n", stats.Cells)
	fmt.Printf("  wall time:    %v\n", time.Since(start).Round(time.Millisecond))
	if stats.DeviceTime > 0 {
		fmt.Printf("  modeled time: %v on %d simulated V100(s)\n", stats.DeviceTime.Round(time.Microsecond), *gpus)
	}
	fmt.Printf("  GCUPS:        %.2f\n", stats.GCUPS)
}
