// Command logan-worker is the execution tier of a logan-serve cluster.
// It builds a local logan.Aligner engine, registers with a router
// (logan-serve -cluster) over HTTP, and pulls overlap jobs under
// expiring leases: each leased job's FASTA payload runs through the
// BELLA overlap pipeline (logan.Overlapper) on the local engine and the
// resulting PAF streams back to the router. While a job executes, the
// worker extends its lease on a cadence the router dictates; heartbeats
// push the worker's full telemetry snapshot so a single scrape of the
// router's /metrics covers the fleet under worker="<name>" labels.
//
// Failure semantics: if the process dies abruptly (SIGKILL, panic,
// power loss) it simply stops extending its leases, and the router
// requeues the in-flight job for another worker — the output is
// byte-identical wherever it re-runs. SIGINT/SIGTERM shut down
// gracefully: the in-flight job is reported back as requeueable before
// the process exits, so the router reassigns it without waiting for the
// lease to expire.
//
// Usage:
//
//	logan-worker -router http://router:8080 [-name $(hostname)]
//	             [-token secret] [-backend cpu|gpu|hybrid] [-gpus 1]
//	             [-threads 0] [-cells-per-sec 0]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"regexp"
	"strings"
	"syscall"

	"logan"
	"logan/internal/cluster"
)

func main() {
	var (
		router  = flag.String("router", "", "router base URL, e.g. http://router:8080 (required)")
		name    = flag.String("name", "", "worker name, the worker=\"...\" label in the cluster rollup (default: hostname)")
		token   = flag.String("token", "", "shared cluster secret (the router's -cluster-token)")
		backend = flag.String("backend", "cpu", "alignment backend: cpu, gpu or hybrid")
		gpus    = flag.Int("gpus", 1, "simulated GPU count (gpu and hybrid backends)")
		threads = flag.Int("threads", 0, "CPU worker count (0 = GOMAXPROCS)")
		cellsPS = flag.Float64("cells-per-sec", 0, "advertised throughput estimate in DP cells/second (0 = unreported)")
	)
	flag.Parse()

	if *router == "" {
		fmt.Fprintln(os.Stderr, "logan-worker: -router is required")
		os.Exit(2)
	}
	if *name == "" {
		host, err := os.Hostname()
		if err != nil || host == "" {
			host = fmt.Sprintf("worker-%d", os.Getpid())
		}
		*name = labelSafe(host)
	}

	opt := logan.EngineOptions{Threads: *threads, GPUs: *gpus}
	switch *backend {
	case "cpu":
	case "gpu":
		opt.Backend = logan.GPU
	case "hybrid":
		opt.Backend = logan.Hybrid
	default:
		fmt.Fprintf(os.Stderr, "logan-worker: unknown backend %q\n", *backend)
		os.Exit(2)
	}
	eng, err := logan.NewAligner(opt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "logan-worker: %v\n", err)
		os.Exit(1)
	}
	ov, err := logan.NewOverlapper(eng, logan.OverlapperOptions{})
	if err != nil {
		fmt.Fprintf(os.Stderr, "logan-worker: %v\n", err)
		os.Exit(1)
	}

	w, err := cluster.NewWorker(cluster.WorkerOptions{
		RouterURL:  strings.TrimRight(*router, "/"),
		Name:       *name,
		Token:      *token,
		Overlapper: ov,
		Backend:    *backend,
		CellsPS:    *cellsPS,
		Registry:   eng.Telemetry(),
		Logf:       log.Printf,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "logan-worker: %v\n", err)
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Printf("logan-worker: %s serving %s (backend %s)\n", *name, *router, *backend)
	err = w.Run(ctx)
	eng.Close()
	logan.CloseDefaultEngines()
	if err != nil {
		fmt.Fprintf(os.Stderr, "logan-worker: %v\n", err)
		os.Exit(1)
	}
}

// unsafeLabelChars matches everything a cluster worker name may not
// contain; hostnames are sanitized through it.
var unsafeLabelChars = regexp.MustCompile(`[^A-Za-z0-9_.-]+`)

// labelSafe rewrites s into a valid worker name.
func labelSafe(s string) string {
	s = unsafeLabelChars.ReplaceAllString(s, "-")
	s = strings.Trim(s, "-")
	if s == "" {
		return "worker"
	}
	return s
}
