// Command logan-bench regenerates the paper's evaluation: every table
// (I-V) and figure (8-13), printed with the paper's reference values side
// by side. This is the harness behind EXPERIMENTS.md.
//
// Usage:
//
//	logan-bench                 # all experiments at the default scale
//	logan-bench -exp table2     # one experiment
//	logan-bench -quick          # reduced scale (test-suite settings)
//	LOGAN_BENCH_PAIRS=64 logan-bench -exp table3
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"logan/internal/bench"
)

func main() {
	var (
		exp   = flag.String("exp", "all", "experiment: table1,table2,table3,table4,table5,fig12,fig13,ablation or all")
		quick = flag.Bool("quick", false, "use the reduced test-suite scale")
		csv   = flag.Bool("csv", false, "emit CSV instead of aligned tables")
	)
	flag.Parse()

	scale := bench.DefaultScale()
	if *quick {
		scale = bench.QuickScale()
	}

	type experiment struct {
		name string
		run  func() error
	}
	emit := func(render func() string, csvOut func() string) {
		if *csv {
			fmt.Println(csvOut())
		} else {
			fmt.Println(render())
		}
	}
	experiments := []experiment{
		{"table1", func() error {
			res, err := bench.RunTableI(scale)
			if err != nil {
				return err
			}
			emit(res.Table.Render, res.Table.CSV)
			return nil
		}},
		{"table2", func() error {
			res, err := bench.RunTableII(scale)
			if err != nil {
				return err
			}
			emit(res.Table.Render, res.Table.CSV)
			if !*csv {
				fmt.Println(res.Fig.Render(64, 16))
				fmt.Printf("LOGAN peak single-GPU GCUPS: %.1f (paper %.1f)\n\n", res.PeakGCUPS, 181.4)
			}
			return nil
		}},
		{"table3", func() error {
			res, err := bench.RunTableIII(scale)
			if err != nil {
				return err
			}
			emit(res.Table.Render, res.Table.CSV)
			if !*csv {
				fmt.Println(res.Fig.Render(64, 16))
			}
			return nil
		}},
		{"table4", func() error {
			res, err := bench.RunTableIV(scale)
			if err != nil {
				return err
			}
			emit(res.Table.Render, res.Table.CSV)
			if !*csv {
				fmt.Println(res.Fig.Render(64, 16))
				fmt.Printf("pipeline accuracy (scaled run): recall %.3f precision %.3f\n\n",
					res.Accuracy.Recall, res.Accuracy.Precision)
			}
			return nil
		}},
		{"table5", func() error {
			res, err := bench.RunTableV(scale)
			if err != nil {
				return err
			}
			emit(res.Table.Render, res.Table.CSV)
			if !*csv {
				fmt.Println(res.Fig.Render(64, 16))
			}
			return nil
		}},
		{"fig12", func() error {
			res, err := bench.RunFig12(scale)
			if err != nil {
				return err
			}
			emit(res.Table.Render, res.Table.CSV)
			if !*csv {
				fmt.Println(res.Fig.Render(64, 16))
			}
			return nil
		}},
		{"fig13", func() error {
			res, err := bench.RunFig13(scale)
			if err != nil {
				return err
			}
			emit(res.Table.Render, res.Table.CSV)
			if !*csv {
				fmt.Println(res.Plot)
			}
			return nil
		}},
		{"ablation", func() error {
			abls, err := bench.RunAblations(scale)
			if err != nil {
				return err
			}
			tbl := bench.AblationTable(abls)
			emit(tbl.Render, tbl.CSV)
			return nil
		}},
	}

	ran := 0
	for _, e := range experiments {
		if *exp != "all" && !strings.EqualFold(*exp, e.name) {
			continue
		}
		start := time.Now()
		if err := e.run(); err != nil {
			fmt.Fprintf(os.Stderr, "logan-bench %s: %v\n", e.name, err)
			os.Exit(1)
		}
		if !*csv {
			fmt.Printf("[%s regenerated in %v]\n\n", e.name, time.Since(start).Round(time.Millisecond))
		}
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}
