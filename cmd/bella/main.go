// Command bella runs the BELLA long-read overlapper pipeline on a
// synthetic data set: k-mer counting, reliable-k-mer pruning, SpGEMM
// overlap detection, binning, X-drop alignment (CPU or simulated-GPU
// LOGAN), adaptive-threshold filtering — and evaluates recall/precision
// against the simulator's ground truth (paper §V).
//
// Usage:
//
//	bella [-preset ecoli-sim|celegans-sim|tiny] [-x 25] [-backend gpu]
//	      [-gpus 6] [-seed 1] [-k 17]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"logan/internal/bella"
	"logan/internal/genome"
	"logan/internal/loadbal"
	"logan/internal/seq"
)

func main() {
	var (
		presetName = flag.String("preset", "tiny", "data set preset: ecoli-sim, celegans-sim or tiny")
		fasta      = flag.String("fasta", "", "align reads from this FASTA file instead of simulating (no ground-truth accuracy)")
		coverage   = flag.Float64("cov", 6, "assumed coverage for -fasta input (reliable k-mer model)")
		errRate    = flag.Float64("errrate", 0.15, "assumed per-read error rate for -fasta input")
		x          = flag.Int("x", 25, "X-drop threshold for the alignment stage")
		backend    = flag.String("backend", "cpu", "alignment backend: cpu or gpu")
		gpus       = flag.Int("gpus", 1, "simulated GPU count")
		seed       = flag.Int64("seed", 1, "simulation RNG seed")
		k          = flag.Int("k", 17, "k-mer length")
		minOv      = flag.Int("minov", 500, "minimum reported overlap length (bases)")
		cigar      = flag.Bool("cigar", false, "recover CIGAR strings for accepted overlaps (CPU post-pass)")
		pafOut     = flag.String("paf", "", "write accepted overlaps to this file in PAF format")
		dumpReads  = flag.String("dump-reads", "", "write the simulated reads as FASTA and exit")
	)
	flag.Parse()

	var preset genome.Preset
	switch *presetName {
	case "ecoli-sim":
		preset = genome.EColiSim()
	case "celegans-sim":
		preset = genome.CElegansSim()
	case "tiny":
		preset = genome.Preset{
			Name: "tiny", GenomeLen: 80_000, Coverage: 5,
			MinLen: 1000, MaxLen: 2500, ErrorRate: 0.15, RepeatFrac: 0.02,
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown preset %q\n", *presetName)
		os.Exit(2)
	}

	var rs genome.ReadSet
	haveTruth := false
	if *fasta != "" {
		f, err := os.Open(*fasta)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bella: %v\n", err)
			os.Exit(1)
		}
		recs, err := seq.ReadFasta(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "bella: %v\n", err)
			os.Exit(1)
		}
		rs = genome.FromRecords(recs)
		preset.Coverage = *coverage
		preset.ErrorRate = *errRate
		fmt.Printf("loaded %d reads from %s\n", len(rs.Reads), *fasta)
	} else {
		rng := rand.New(rand.NewSource(*seed))
		fmt.Printf("simulating %s: genome %d bp, coverage %.1f, error %.0f%%\n",
			preset.Name, preset.GenomeLen, preset.Coverage, preset.ErrorRate*100)
		rs = preset.Build(rng)
		haveTruth = true
		fmt.Printf("  %d reads sampled\n", len(rs.Reads))
	}
	if *dumpReads != "" {
		f, err := os.Create(*dumpReads)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bella: %v\n", err)
			os.Exit(1)
		}
		if err := seq.WriteFasta(f, rs.Records()); err != nil {
			fmt.Fprintf(os.Stderr, "bella: %v\n", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("wrote %d reads to %s\n", len(rs.Reads), *dumpReads)
		return
	}

	cfg := bella.DefaultConfig(preset.Coverage, preset.ErrorRate, int32(*x))
	cfg.K = *k
	cfg.MinOverlap = *minOv
	cfg.Traceback = *cigar

	var aligner bella.Aligner = bella.CPUAligner{}
	if *backend == "gpu" {
		pool, err := loadbal.NewV100Pool(*gpus)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bella: %v\n", err)
			os.Exit(1)
		}
		aligner = bella.GPUAligner{Pool: pool}
	}

	start := time.Now()
	res, err := bella.Run(rs, cfg, aligner)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bella: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("pipeline (%s aligner) in %v:\n", aligner.Name(), time.Since(start).Round(time.Millisecond))
	fmt.Printf("  reliable k-mers:  %d (bounds %d..%d)\n", res.Reliable, res.Bounds[0], res.Bounds[1])
	fmt.Printf("  matrix nnz:       %d\n", res.NNZ)
	fmt.Printf("  candidate pairs:  %d\n", res.Candidates)
	fmt.Printf("  accepted overlaps:%d\n", len(res.Overlaps))
	fmt.Printf("  alignment cells:  %d\n", res.Align.Cells)
	fmt.Printf("  stage times: count=%v prune=%v matrix=%v spgemm=%v bin=%v align=%v filter=%v\n",
		res.Times.Count.Round(time.Millisecond), res.Times.Prune.Round(time.Millisecond),
		res.Times.Matrix.Round(time.Millisecond), res.Times.SpGEMM.Round(time.Millisecond),
		res.Times.Binning.Round(time.Millisecond), res.Times.Alignment.Round(time.Millisecond),
		res.Times.Filter.Round(time.Millisecond))
	if res.Align.DeviceTime > 0 {
		fmt.Printf("  modeled GPU time: %v\n", res.Align.DeviceTime.Round(time.Microsecond))
	}
	if *cigar && len(res.Overlaps) > 0 {
		n := min(3, len(res.Overlaps))
		fmt.Printf("first %d overlaps with traceback:\n", n)
		for _, ov := range res.Overlaps[:n] {
			c := ov.CIGAR
			if len(c) > 60 {
				c = c[:57] + "..."
			}
			fmt.Printf("  %d-%d score=%d identity=%.3f cigar=%s\n", ov.I, ov.J, ov.Score, ov.Identity, c)
		}
	}
	if *pafOut != "" {
		f, err := os.Create(*pafOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bella: %v\n", err)
			os.Exit(1)
		}
		if err := bella.WritePAF(f, rs.Reads, res.Overlaps); err != nil {
			fmt.Fprintf(os.Stderr, "bella: %v\n", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("wrote %d overlaps to %s (PAF)\n", len(res.Overlaps), *pafOut)
	}
	if haveTruth {
		acc := bella.Evaluate(rs, res.Overlaps, *minOv)
		fmt.Printf("accuracy vs ground truth (overlap >= %d bp):\n", *minOv)
		fmt.Printf("  recall %.3f  precision %.3f  F1 %.3f  (tp=%d, truth=%d, predicted=%d)\n",
			acc.Recall, acc.Precision, acc.F1, acc.TruePositives, acc.TruePairs, acc.PredictedPairs)
	}
}
