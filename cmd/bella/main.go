// Command bella runs the BELLA long-read overlapper pipeline — the
// public logan.Overlapper subsystem — on a synthetic data set or a FASTA
// file: k-mer counting, reliable-k-mer pruning, SpGEMM overlap detection,
// binning, batched X-drop alignment on a shared engine (CPU, simulated
// GPU or Hybrid), adaptive-threshold filtering — and, for simulated data,
// evaluates recall/precision against the simulator's ground truth
// (paper §V). PAF output is byte-identical to logan-serve's /jobs API on
// the same inputs (both run the same Overlapper).
//
// Usage:
//
//	bella [-preset ecoli-sim|celegans-sim|tiny] [-x 25]
//	      [-backend cpu|gpu|hybrid] [-gpus 6] [-seed 1] [-k 17]
//	      [-fasta reads.fa] [-paf out.paf] [-cigar] [-progress]
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"logan"
	"logan/internal/bella"
	"logan/internal/genome"
	"logan/internal/seq"
)

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "bella: %v\n", err)
	os.Exit(1)
}

func main() {
	var (
		presetName = flag.String("preset", "tiny", "data set preset: ecoli-sim, celegans-sim or tiny")
		fasta      = flag.String("fasta", "", "align reads from this FASTA file instead of simulating (no ground-truth accuracy)")
		coverage   = flag.Float64("cov", 6, "assumed coverage for -fasta input (reliable k-mer model)")
		errRate    = flag.Float64("errrate", 0.15, "assumed per-read error rate for -fasta input")
		x          = flag.Int("x", 25, "X-drop threshold for the alignment stage")
		backend    = flag.String("backend", "cpu", "alignment backend: cpu, gpu or hybrid")
		gpus       = flag.Int("gpus", 1, "simulated GPU count")
		seed       = flag.Int64("seed", 1, "simulation RNG seed")
		k          = flag.Int("k", 17, "k-mer length")
		minOv      = flag.Int("minov", 500, "minimum reported overlap length (bases)")
		cigar      = flag.Bool("cigar", false, "recover CIGAR strings for accepted overlaps (CPU post-pass)")
		pafOut     = flag.String("paf", "", "write accepted overlaps to this file in PAF format")
		dumpReads  = flag.String("dump-reads", "", "write the simulated reads as FASTA and exit")
		dumpGenome = flag.String("dump-genome", "", "also write the simulated genome as FASTA (the mapping reference for logan-map / POST /map)")
		progress   = flag.Bool("progress", false, "print pipeline progress to stderr")
	)
	flag.Parse()

	var preset genome.Preset
	switch *presetName {
	case "ecoli-sim":
		preset = genome.EColiSim()
	case "celegans-sim":
		preset = genome.CElegansSim()
	case "tiny":
		preset = genome.Preset{
			Name: "tiny", GenomeLen: 80_000, Coverage: 5,
			MinLen: 1000, MaxLen: 2500, ErrorRate: 0.15, RepeatFrac: 0.02,
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown preset %q\n", *presetName)
		os.Exit(2)
	}

	var rs genome.ReadSet
	haveTruth := false
	if *fasta != "" {
		f, err := os.Open(*fasta)
		if err != nil {
			fatal(err)
		}
		recs, err := seq.ReadFasta(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		rs = genome.FromRecords(recs)
		preset.Coverage = *coverage
		preset.ErrorRate = *errRate
		fmt.Printf("loaded %d reads from %s\n", len(rs.Reads), *fasta)
	} else {
		rng := rand.New(rand.NewSource(*seed))
		fmt.Printf("simulating %s: genome %d bp, coverage %.1f, error %.0f%%\n",
			preset.Name, preset.GenomeLen, preset.Coverage, preset.ErrorRate*100)
		rs = preset.Build(rng)
		haveTruth = true
		fmt.Printf("  %d reads sampled\n", len(rs.Reads))
	}
	if *dumpGenome != "" {
		if len(rs.Genome.Seq) == 0 {
			fatal(fmt.Errorf("-dump-genome needs a simulated data set (-fasta input has no genome)"))
		}
		f, err := os.Create(*dumpGenome)
		if err != nil {
			fatal(err)
		}
		rec := []seq.Record{{Name: rs.Genome.Name, Seq: rs.Genome.Seq}}
		if err := seq.WriteFasta(f, rec); err != nil {
			fatal(err)
		}
		f.Close()
		fmt.Printf("wrote the %d bp genome to %s\n", len(rs.Genome.Seq), *dumpGenome)
	}
	if *dumpReads != "" {
		f, err := os.Create(*dumpReads)
		if err != nil {
			fatal(err)
		}
		if err := seq.WriteFasta(f, rs.Records()); err != nil {
			fatal(err)
		}
		f.Close()
		fmt.Printf("wrote %d reads to %s\n", len(rs.Reads), *dumpReads)
		return
	}

	opt := logan.EngineOptions{GPUs: *gpus}
	switch *backend {
	case "cpu":
		opt.Backend = logan.CPU
	case "gpu":
		opt.Backend = logan.GPU
	case "hybrid":
		opt.Backend = logan.Hybrid
	default:
		fmt.Fprintf(os.Stderr, "unknown backend %q (want cpu, gpu or hybrid)\n", *backend)
		os.Exit(2)
	}
	eng, err := logan.NewAligner(opt)
	if err != nil {
		fatal(err)
	}
	defer eng.Close()
	ov, err := logan.NewOverlapper(eng, logan.OverlapperOptions{})
	if err != nil {
		fatal(err)
	}

	cfg := logan.DefaultOverlapConfig(preset.Coverage, preset.ErrorRate, int32(*x))
	cfg.K = *k
	cfg.MinOverlap = *minOv
	cfg.Traceback = *cigar
	if *progress {
		cfg.OnProgress = func(p logan.OverlapProgress) {
			fmt.Fprintf(os.Stderr, "\rstage=%-8s kmers=%d cands=%d extended=%d/%d",
				p.Stage, p.ReliableKmers, p.CandidatePairs, p.ExtensionsDone, p.ExtensionsTotal)
			if p.Stage == logan.StageDone {
				fmt.Fprintln(os.Stderr)
			}
		}
	}

	reads := make([]logan.Read, len(rs.Reads))
	for i, r := range rs.Reads {
		reads[i] = logan.Read{Name: r.Name(), Seq: r.Seq}
	}

	start := time.Now()
	res, err := ov.Run(context.Background(), reads, cfg)
	if err != nil {
		fatal(err)
	}
	st := res.Stats
	fmt.Printf("pipeline (%s backend) in %v:\n", *backend, time.Since(start).Round(time.Millisecond))
	fmt.Printf("  reliable k-mers:  %d\n", st.ReliableKmers)
	fmt.Printf("  matrix nnz:       %d\n", st.MatrixNNZ)
	fmt.Printf("  candidate pairs:  %d\n", st.CandidatePairs)
	fmt.Printf("  accepted overlaps:%d\n", len(res.Records))
	fmt.Printf("  alignment cells:  %d\n", st.Cells)
	fmt.Printf("  stage times: count=%v prune=%v matrix=%v spgemm=%v bin=%v align=%v filter=%v\n",
		st.Times.Count.Round(time.Millisecond), st.Times.Prune.Round(time.Millisecond),
		st.Times.Matrix.Round(time.Millisecond), st.Times.SpGEMM.Round(time.Millisecond),
		st.Times.Binning.Round(time.Millisecond), st.Times.Alignment.Round(time.Millisecond),
		st.Times.Filter.Round(time.Millisecond))
	if st.DeviceTime > 0 {
		fmt.Printf("  modeled GPU time: %v\n", st.DeviceTime.Round(time.Microsecond))
	}
	if *cigar && len(res.Records) > 0 {
		n := min(3, len(res.Records))
		fmt.Printf("first %d overlaps with traceback:\n", n)
		for _, r := range res.Records[:n] {
			c := r.CIGAR
			if len(c) > 60 {
				c = c[:57] + "..."
			}
			fmt.Printf("  %d-%d score=%d identity=%.3f cigar=%s\n", r.QIndex, r.TIndex, r.Score, 1-r.Divergence, c)
		}
	}
	if *pafOut != "" {
		f, err := os.Create(*pafOut)
		if err != nil {
			fatal(err)
		}
		if err := logan.WritePAF(f, res.Records); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d overlaps to %s (PAF)\n", len(res.Records), *pafOut)
	}
	if haveTruth {
		// Ground-truth evaluation keys on read indices, which the public
		// records carry alongside the PAF fields.
		evs := make([]bella.Overlap, len(res.Records))
		for i, r := range res.Records {
			evs[i] = bella.Overlap{I: int32(r.QIndex), J: int32(r.TIndex)}
		}
		acc := bella.Evaluate(rs, evs, *minOv)
		fmt.Printf("accuracy vs ground truth (overlap >= %d bp):\n", *minOv)
		fmt.Printf("  recall %.3f  precision %.3f  F1 %.3f  (tp=%d, truth=%d, predicted=%d)\n",
			acc.Recall, acc.Precision, acc.F1, acc.TruePositives, acc.TruePairs, acc.PredictedPairs)
	}
}
