package logan

// API-compatibility guard: every deprecated v1 entry point must keep
// compiling and keep its documented behavior, and must agree with the v2
// surface it wraps. CI runs this alongside building examples/ as the
// API-compat gate; if a future change breaks the v1 wrappers, this file
// is the tripwire.

import (
	"testing"
)

// TestAPICompatV1Wrappers exercises the full deprecated surface: Options,
// DefaultOptions, package-level Align and AlignPair.
func TestAPICompatV1Wrappers(t *testing.T) {
	defer CloseDefaultEngines()

	// DefaultOptions carries the paper's scheme.
	opt := DefaultOptions(60)
	if opt.X != 60 || opt.Match != 1 || opt.Mismatch != -1 || opt.Gap != -1 {
		t.Fatalf("DefaultOptions(60) = %+v", opt)
	}

	// Options fields are all assignable (compile-time shape check).
	opt = Options{X: 60, Match: 1, Mismatch: -1, Gap: -1, Backend: CPU, GPUs: 1, Threads: 2}

	pairs := makePairs(8)

	// Package-level Align on every backend, equal to the v2 engine path.
	for _, b := range []Backend{CPU, GPU, Hybrid} {
		opt.Backend = b
		got, st, err := Align(pairs, opt)
		if err != nil {
			t.Fatalf("backend %v: %v", b, err)
		}
		if st.Pairs != len(pairs) {
			t.Fatalf("backend %v: stats %+v", b, st)
		}
		eng, err := NewAligner(EngineOptions{Backend: b, GPUs: 1, Threads: 2})
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := eng.Align(ctxb, pairs, Config{X: 60, Scoring: LinearScoring(1, -1, -1)})
		eng.Close()
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("backend %v pair %d: v1 %+v != v2 %+v", b, i, got[i], want[i])
			}
		}
	}

	// AlignPair agrees with a one-pair batch.
	p := pairs[0]
	a, err := AlignPair(p.Query, p.Target, p.SeedQ, p.SeedT, p.SeedLen, DefaultOptions(60))
	if err != nil {
		t.Fatal(err)
	}
	opt.Backend = CPU
	batch, _, err := Align([]Pair{p}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if a != batch[0] {
		t.Fatalf("AlignPair %+v != Align batch %+v", a, batch[0])
	}
}

// TestAPICompatZeroValueOptions pins the documented v1 zero-value
// behavior: an all-zero scoring in Options still selects +1/-1/-1 (the
// compat wrappers must not inherit the v2 strictness retroactively).
func TestAPICompatZeroValueOptions(t *testing.T) {
	defer CloseDefaultEngines()
	s := []byte("ACGTACGTACGTACGT")
	a, err := AlignPair(s, s, 4, 4, 4, Options{X: 20})
	if err != nil {
		t.Fatal(err)
	}
	if a.Score != int32(len(s)) {
		t.Fatalf("zero-value Options score %d, want %d", a.Score, len(s))
	}
	out, _, err := Align([]Pair{{Query: s, Target: s, SeedQ: 4, SeedT: 4, SeedLen: 4}}, Options{X: 20})
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Score != int32(len(s)) {
		t.Fatalf("zero-value Options batch score %d", out[0].Score)
	}
}
