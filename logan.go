// Package logan is a Go reproduction of LOGAN (Zeni et al., IPDPS 2020):
// high-performance batched X-drop pairwise alignment for long reads. The
// package front-ends the repository's engine: the X-drop seed-and-extend
// algorithm of Zhang et al. with a SeqAn-compatible CPU path and a
// simulated-GPU path that reproduces the paper's kernel design
// (block-per-alignment, anti-diagonal thread segments, warp max-reduction,
// adaptive band, multi-GPU load balancing).
//
// Quick start:
//
//	res, err := logan.AlignPair(q, t, 100, 100, 17, logan.DefaultOptions(100))
//	batch, stats, err := logan.Align(pairs, logan.DefaultOptions(100))
//
// High-throughput callers should create one Aligner engine and reuse it:
//
//	eng, err := logan.NewAligner(logan.DefaultOptions(100))
//	defer eng.Close()
//	out, stats, err := eng.Align(pairs)          // or AlignInto to recycle out
//	s := eng.NewStream(4)                        // pipelined ingest→align→emit
//	c := eng.NewCoalescer(logan.CoalescerOptions{}) // merge concurrent callers
//
// Execution is pluggable (internal/backend): CPU worker pool, simulated
// multi-GPU node, or the Hybrid scheduler that shards each batch across
// both. All backends produce bit-identical scores; GPU-backed batches
// additionally report the modeled device time on NVIDIA Tesla V100s.
package logan

import (
	"fmt"
	"time"

	"logan/internal/seq"
	"logan/internal/xdrop"
)

// Backend selects the execution engine.
type Backend int

const (
	// CPU runs the SeqAn-style multi-threaded X-drop (the paper's
	// baseline).
	CPU Backend = iota
	// GPU runs the LOGAN kernel on simulated Tesla V100 devices.
	GPU
	// Hybrid shards every batch across the CPU worker pool and every
	// simulated GPU at once: a heterogeneous LPT split weighted by each
	// worker's throughput estimate, run concurrently and merged in input
	// order. Scores are bit-identical to CPU and GPU execution.
	Hybrid
)

// Options configures an alignment batch.
type Options struct {
	// X is the X-drop threshold: extension stops when the score falls
	// more than X below the best seen (paper §III-A).
	X int32
	// Match, Mismatch, Gap form the linear scoring scheme. The zero
	// value selects the paper's +1/-1/-1.
	Match, Mismatch, Gap int32
	// Backend selects CPU, GPU or Hybrid execution (default CPU).
	Backend Backend
	// GPUs is the simulated device count for the GPU and Hybrid backends
	// (default 1).
	GPUs int
	// Threads is the CPU worker count for the CPU and Hybrid backends
	// (default GOMAXPROCS).
	Threads int
}

// DefaultOptions returns the paper's configuration for a given X.
func DefaultOptions(x int32) Options {
	return Options{X: x, Match: 1, Mismatch: -1, Gap: -1}
}

func (o Options) scoring() xdrop.Scoring {
	s := xdrop.Scoring{Match: o.Match, Mismatch: o.Mismatch, Gap: o.Gap}
	if s == (xdrop.Scoring{}) {
		s = xdrop.DefaultScoring()
	}
	return s
}

// Pair is one alignment work item: two sequences and an exact seed match
// (positions and length), as produced by an overlapper such as BELLA.
//
// Ingestion is zero-copy: canonical sequences (upper-case ACGTN) are
// aliased, not copied, so the caller must not mutate Query or Target until
// the call that received the Pair has returned — or, for Stream.Submit,
// until the batch's result has been delivered.
type Pair struct {
	Query, Target []byte
	SeedQ, SeedT  int
	SeedLen       int
}

// Alignment is the outcome for one pair: the combined seed-and-extend
// score and the aligned intervals on both sequences. LOGAN is score-only
// (no traceback), exactly like the original.
type Alignment struct {
	Score        int32
	QBegin, QEnd int   // aligned query interval [QBegin, QEnd)
	TBegin, TEnd int   // aligned target interval [TBegin, TEnd)
	Cells        int64 // DP cells the extension explored
}

// BackendStats is the per-worker share of one batch: which execution
// backend ran how many pairs, how many DP cells they cost, and how long
// that shard took. Time follows the same denominator convention as GCUPS:
// modeled device time for GPU shards, measured wall time for CPU shards.
type BackendStats struct {
	// Name identifies the worker: "cpu", "gpu0", "gpu1", ...
	Name  string
	Pairs int
	Cells int64
	Time  time.Duration
}

// Stats summarizes a batch.
type Stats struct {
	Pairs int
	Cells int64
	// WallTime is the measured host time of the batch itself; engine
	// setup (worker pools, device pools) is paid at NewAligner and never
	// counted here, so the figure is stable across repeated batches.
	WallTime time.Duration
	// DeviceTime is the modeled GPU completion time of the batch (GPU and
	// Hybrid backends): kernels and transfers on the device timeline of
	// the slowest device, excluding one-off pool construction and
	// host-side prep. Zero for pure-CPU execution.
	DeviceTime time.Duration
	// GCUPS is billions of DP cells per second. The denominator depends
	// on the backend, because the two clocks measure different things:
	//
	//   - CPU: WallTime — real host execution has only the wall clock.
	//   - GPU: DeviceTime — the paper's device-side throughput metric;
	//     modeled kernel+transfer time, independent of simulator speed.
	//   - Hybrid: WallTime — shards mix the two clocks (CPU wall, GPU
	//     device), so only end-to-end wall time is meaningful; per-shard
	//     rates live in PerBackend.
	//
	// When the selected denominator is zero (e.g. an empty batch), GCUPS
	// is 0, never NaN or Inf.
	GCUPS float64
	// PerBackend is the per-worker breakdown of the batch in worker
	// order: one entry for the CPU pool and/or each device that received
	// pairs. Single-backend batches report a single entry.
	PerBackend []BackendStats
}

// AlignPair aligns a single pair with the CPU engine.
func AlignPair(query, target []byte, seedQ, seedT, seedLen int, opt Options) (Alignment, error) {
	q, err := seq.FromBytes(query)
	if err != nil {
		return Alignment{}, fmt.Errorf("logan: query: %w", err)
	}
	t, err := seq.FromBytes(target)
	if err != nil {
		return Alignment{}, fmt.Errorf("logan: target: %w", err)
	}
	r, err := xdrop.ExtendSeed(q, t, seedQ, seedT, seedLen, opt.scoring(), opt.X)
	if err != nil {
		return Alignment{}, err
	}
	return toAlignment(r), nil
}

// Align aligns a batch of pairs on the selected backend. Results are
// positionally aligned with the input.
//
// Align is a thin wrapper over a cached default Aligner engine: the first
// call for a given backend/device/thread shape builds the engine, later
// calls reuse it. Callers with steady batch traffic should hold their own
// engine (NewAligner) to control its lifetime and use AlignInto/NewStream.
func Align(pairs []Pair, opt Options) ([]Alignment, Stats, error) {
	a, release, err := defaultEngine(opt)
	if err != nil {
		return nil, Stats{}, err
	}
	defer release()
	return a.align(nil, pairs, opt)
}

func toAlignment(r xdrop.SeedResult) Alignment {
	return Alignment{
		Score:  r.Score,
		QBegin: r.QBegin, QEnd: r.QEnd,
		TBegin: r.TBegin, TEnd: r.TEnd,
		Cells: r.Cells(),
	}
}
