// Package logan is a Go reproduction of LOGAN (Zeni et al., IPDPS 2020):
// high-performance batched X-drop pairwise alignment for long reads. The
// package front-ends the repository's engine: the X-drop seed-and-extend
// algorithm of Zhang et al. with a SeqAn-compatible CPU path and a
// simulated-GPU path that reproduces the paper's kernel design
// (block-per-alignment, anti-diagonal thread segments, warp max-reduction,
// adaptive band, multi-GPU load balancing).
//
// Quick start:
//
//	res, err := logan.AlignPair(q, t, 100, 100, 17, logan.DefaultOptions(100))
//	batch, stats, err := logan.Align(pairs, logan.DefaultOptions(100))
//
// Both backends produce bit-identical scores; the GPU backend additionally
// reports the modeled device time of the batch on NVIDIA Tesla V100s.
package logan

import (
	"fmt"
	"time"

	"logan/internal/core"
	"logan/internal/loadbal"
	"logan/internal/seq"
	"logan/internal/xdrop"
)

// Backend selects the execution engine.
type Backend int

const (
	// CPU runs the SeqAn-style multi-threaded X-drop (the paper's
	// baseline).
	CPU Backend = iota
	// GPU runs the LOGAN kernel on simulated Tesla V100 devices.
	GPU
)

// Options configures an alignment batch.
type Options struct {
	// X is the X-drop threshold: extension stops when the score falls
	// more than X below the best seen (paper §III-A).
	X int32
	// Match, Mismatch, Gap form the linear scoring scheme. The zero
	// value selects the paper's +1/-1/-1.
	Match, Mismatch, Gap int32
	// Backend selects CPU or GPU execution (default CPU).
	Backend Backend
	// GPUs is the simulated device count for the GPU backend (default 1).
	GPUs int
	// Threads is the CPU worker count (default GOMAXPROCS).
	Threads int
}

// DefaultOptions returns the paper's configuration for a given X.
func DefaultOptions(x int32) Options {
	return Options{X: x, Match: 1, Mismatch: -1, Gap: -1}
}

func (o Options) scoring() xdrop.Scoring {
	s := xdrop.Scoring{Match: o.Match, Mismatch: o.Mismatch, Gap: o.Gap}
	if s == (xdrop.Scoring{}) {
		s = xdrop.DefaultScoring()
	}
	return s
}

// Pair is one alignment work item: two sequences and an exact seed match
// (positions and length), as produced by an overlapper such as BELLA.
type Pair struct {
	Query, Target []byte
	SeedQ, SeedT  int
	SeedLen       int
}

// Alignment is the outcome for one pair: the combined seed-and-extend
// score and the aligned intervals on both sequences. LOGAN is score-only
// (no traceback), exactly like the original.
type Alignment struct {
	Score        int32
	QBegin, QEnd int   // aligned query interval [QBegin, QEnd)
	TBegin, TEnd int   // aligned target interval [TBegin, TEnd)
	Cells        int64 // DP cells the extension explored
}

// Stats summarizes a batch.
type Stats struct {
	Pairs      int
	Cells      int64
	WallTime   time.Duration // measured host time
	DeviceTime time.Duration // modeled GPU time (GPU backend only)
	GCUPS      float64       // cells per modeled/wall second, in billions
}

// AlignPair aligns a single pair with the CPU engine.
func AlignPair(query, target []byte, seedQ, seedT, seedLen int, opt Options) (Alignment, error) {
	q, err := seq.New(string(query))
	if err != nil {
		return Alignment{}, fmt.Errorf("logan: query: %w", err)
	}
	t, err := seq.New(string(target))
	if err != nil {
		return Alignment{}, fmt.Errorf("logan: target: %w", err)
	}
	r, err := xdrop.ExtendSeed(q, t, seedQ, seedT, seedLen, opt.scoring(), opt.X)
	if err != nil {
		return Alignment{}, err
	}
	return toAlignment(r), nil
}

// Align aligns a batch of pairs on the selected backend. Results are
// positionally aligned with the input.
func Align(pairs []Pair, opt Options) ([]Alignment, Stats, error) {
	start := time.Now()
	in := make([]seq.Pair, len(pairs))
	for i, p := range pairs {
		q, err := seq.New(string(p.Query))
		if err != nil {
			return nil, Stats{}, fmt.Errorf("logan: pair %d query: %w", i, err)
		}
		t, err := seq.New(string(p.Target))
		if err != nil {
			return nil, Stats{}, fmt.Errorf("logan: pair %d target: %w", i, err)
		}
		in[i] = seq.Pair{
			Query: q, Target: t,
			SeedQPos: p.SeedQ, SeedTPos: p.SeedT, SeedLen: p.SeedLen, ID: i,
		}
	}

	var results []xdrop.SeedResult
	st := Stats{Pairs: len(pairs)}
	switch opt.Backend {
	case GPU:
		gpus := opt.GPUs
		if gpus <= 0 {
			gpus = 1
		}
		pool, err := loadbal.NewV100Pool(gpus)
		if err != nil {
			return nil, Stats{}, err
		}
		res, err := pool.Align(in, core.Config{Scoring: opt.scoring(), X: opt.X}, loadbal.ByLength)
		if err != nil {
			return nil, Stats{}, err
		}
		results = res.Results
		st.DeviceTime = res.TotalTime
	default:
		var err error
		results, _, err = xdrop.ExtendBatch(in, opt.scoring(), opt.X, opt.Threads)
		if err != nil {
			return nil, Stats{}, err
		}
	}

	out := make([]Alignment, len(results))
	for i, r := range results {
		out[i] = toAlignment(r)
		st.Cells += r.Cells()
	}
	st.WallTime = time.Since(start)
	denom := st.WallTime
	if opt.Backend == GPU && st.DeviceTime > 0 {
		denom = st.DeviceTime
	}
	if denom > 0 {
		st.GCUPS = float64(st.Cells) / denom.Seconds() / 1e9
	}
	return out, st, nil
}

func toAlignment(r xdrop.SeedResult) Alignment {
	return Alignment{
		Score:  r.Score,
		QBegin: r.QBegin, QEnd: r.QEnd,
		TBegin: r.TBegin, TEnd: r.TEnd,
		Cells: r.Cells(),
	}
}
