// Package logan is a Go reproduction of LOGAN (Zeni et al., IPDPS 2020):
// high-performance batched X-drop pairwise alignment for long reads. The
// package front-ends the repository's engine: the X-drop seed-and-extend
// algorithm of Zhang et al. with a SeqAn-compatible CPU path and a
// simulated-GPU path that reproduces the paper's kernel design
// (block-per-alignment, anti-diagonal thread segments, warp max-reduction,
// adaptive band, multi-GPU load balancing).
//
// The v2 API separates engine shape from per-request parameters: an
// Aligner is built once from EngineOptions (backend, devices, threads)
// and every Align call carries a context plus its own Config (X and
// scoring scheme), so a single engine serves mixed linear, affine and
// substitution-matrix traffic concurrently:
//
//	eng, err := logan.NewAligner(logan.EngineOptions{Backend: logan.Hybrid})
//	defer eng.Close()
//	out, stats, err := eng.Align(ctx, pairs, logan.DefaultConfig(100))
//	aff := logan.Config{X: 100, Scoring: logan.AffineScoring(1, -1, -2, -1)}
//	out, stats, err = eng.Align(ctx, pairs, aff)
//	pro := logan.Config{X: 40, Scoring: logan.MatrixScoring(logan.Blosum62(-6))}
//	out, stats, err = eng.Align(ctx, protPairs, pro)
//
//	s := eng.NewStream(4)                           // pipelined ingest→align→emit
//	c := eng.NewCoalescer(logan.CoalescerOptions{}) // merge concurrent callers
//
// Execution is pluggable (internal/backend): CPU worker pool, simulated
// multi-GPU node, or the Hybrid scheduler that shards each batch across
// both. All backends produce bit-identical scores; GPU-backed batches
// additionally report the modeled device time on NVIDIA Tesla V100s. The
// GPU kernel is linear-DNA only, exactly like the paper's device code:
// affine and matrix configs run on CPU engines, route to the CPU shards
// of a Hybrid engine, and fail with ErrUnsupportedConfig on a pure-GPU
// engine.
//
// The v1 surface (Options, DefaultOptions, Align, AlignPair) remains as
// thin deprecated wrappers over the v2 engine, so existing call sites of
// those entry points keep compiling. The engine surface itself
// (NewAligner, Aligner.Align/AlignInto, Stream.Submit, Coalescer.Align)
// changed signatures — v1 callers get a compile error pointing at the
// migration table in the README — and Batch gained a required Config
// field (a zero Config fails the batch's result with a validation
// error).
package logan

import (
	"context"
	"fmt"
	"time"

	"logan/internal/seq"
	"logan/internal/xdrop"
)

// Backend selects the execution engine.
type Backend int

const (
	// CPU runs the SeqAn-style multi-threaded X-drop (the paper's
	// baseline).
	CPU Backend = iota
	// GPU runs the LOGAN kernel on simulated Tesla V100 devices.
	GPU
	// Hybrid shards every batch across the CPU worker pool and every
	// simulated GPU at once: a heterogeneous LPT split weighted by each
	// worker's throughput estimate, run concurrently and merged in input
	// order. Scores are bit-identical to CPU and GPU execution.
	Hybrid
)

// Options is the v1 configuration, conflating engine shape
// (Backend/GPUs/Threads) with per-batch parameters (X, scoring).
//
// Deprecated: use EngineOptions for NewAligner and Config for Align. The
// v1 zero-value behavior is preserved here for compatibility: an all-zero
// scoring selects the paper's +1/-1/-1, which made an explicit
// Match:0/Mismatch:0/Gap:0 request indistinguishable from "use the
// default" — the footgun Config.Validate closes.
type Options struct {
	// X is the X-drop threshold: extension stops when the score falls
	// more than X below the best seen (paper §III-A).
	X int32
	// Match, Mismatch, Gap form the linear scoring scheme. The zero
	// value selects the paper's +1/-1/-1.
	Match, Mismatch, Gap int32
	// Backend selects CPU, GPU or Hybrid execution (default CPU).
	Backend Backend
	// GPUs is the simulated device count for the GPU and Hybrid backends
	// (default 1).
	GPUs int
	// Threads is the CPU worker count for the CPU and Hybrid backends
	// (default GOMAXPROCS).
	Threads int
}

// DefaultOptions returns the paper's configuration for a given X.
//
// Deprecated: use DefaultConfig with NewAligner(EngineOptions{...}).
func DefaultOptions(x int32) Options {
	return Options{X: x, Match: 1, Mismatch: -1, Gap: -1}
}

func (o Options) scoring() xdrop.Scoring {
	s := xdrop.Scoring{Match: o.Match, Mismatch: o.Mismatch, Gap: o.Gap}
	if s == (xdrop.Scoring{}) {
		s = xdrop.DefaultScoring()
	}
	return s
}

// engineOptions splits the v1 Options into the engine-shape half.
func (o Options) engineOptions() EngineOptions {
	return EngineOptions{Backend: o.Backend, GPUs: o.GPUs, Threads: o.Threads}
}

// config splits the v1 Options into the per-request half, preserving the
// documented v1 zero-value fallback to +1/-1/-1.
func (o Options) config() Config {
	return Config{X: o.X, Scoring: Scoring{mode: scoringLinear, linear: o.scoring()}}
}

// Pair is one alignment work item: two sequences and an exact seed match
// (positions and length), as produced by an overlapper such as BELLA.
//
// Ingestion is zero-copy: canonical sequences (upper-case ACGTN for the
// linear and affine schemes, the matrix alphabet for matrix scoring) are
// aliased, not copied, so the caller must not mutate Query or Target until
// the call that received the Pair has returned — or, for Stream.Submit,
// until the batch's result has been delivered.
type Pair struct {
	Query, Target []byte
	SeedQ, SeedT  int
	SeedLen       int
}

// Alignment is the outcome for one pair: the combined seed-and-extend
// score and the aligned intervals on both sequences. LOGAN is score-only
// (no traceback), exactly like the original.
type Alignment struct {
	Score        int32
	QBegin, QEnd int   // aligned query interval [QBegin, QEnd)
	TBegin, TEnd int   // aligned target interval [TBegin, TEnd)
	Cells        int64 // DP cells the extension explored
}

// BackendStats is the per-worker share of one batch: which execution
// backend ran how many pairs, how many DP cells they cost, and how long
// that shard took. Time follows the same denominator convention as GCUPS:
// modeled device time for GPU shards, measured wall time for CPU shards.
type BackendStats struct {
	// Name identifies the worker: "cpu", "gpu0", "gpu1", ...
	Name  string
	Pairs int
	Cells int64
	Time  time.Duration
}

// Stats summarizes a batch.
type Stats struct {
	Pairs int
	Cells int64
	// WallTime is the measured host time of the batch itself; engine
	// setup (worker pools, device pools) is paid at NewAligner and never
	// counted here, so the figure is stable across repeated batches.
	WallTime time.Duration
	// DeviceTime is the modeled GPU completion time of the batch (GPU and
	// Hybrid backends): kernels and transfers on the device timeline of
	// the slowest device, excluding one-off pool construction and
	// host-side prep. Zero for pure-CPU execution.
	DeviceTime time.Duration
	// GCUPS is billions of DP cells per second. The denominator depends
	// on the backend, because the two clocks measure different things:
	//
	//   - CPU: WallTime — real host execution has only the wall clock.
	//   - GPU: DeviceTime — the paper's device-side throughput metric;
	//     modeled kernel+transfer time, independent of simulator speed.
	//   - Hybrid: WallTime — shards mix the two clocks (CPU wall, GPU
	//     device), so only end-to-end wall time is meaningful; per-shard
	//     rates live in PerBackend.
	//
	// When the selected denominator is zero (e.g. an empty batch), GCUPS
	// is 0, never NaN or Inf.
	GCUPS float64
	// PerBackend is the per-worker breakdown of the batch in worker
	// order: one entry for the CPU pool and/or each device that received
	// pairs. Single-backend batches report a single entry.
	PerBackend []BackendStats
}

// AlignPair aligns a single pair with the CPU engine.
//
// Deprecated: build an Aligner and call Align with a one-pair batch, or
// keep using this wrapper for quick scripts; it is equivalent to the v1
// behavior.
func AlignPair(query, target []byte, seedQ, seedT, seedLen int, opt Options) (Alignment, error) {
	q, err := seq.FromBytes(query)
	if err != nil {
		return Alignment{}, fmt.Errorf("logan: query: %w", err)
	}
	t, err := seq.FromBytes(target)
	if err != nil {
		return Alignment{}, fmt.Errorf("logan: target: %w", err)
	}
	r, err := xdrop.ExtendSeed(q, t, seedQ, seedT, seedLen, opt.scoring(), opt.X)
	if err != nil {
		return Alignment{}, err
	}
	return toAlignment(r), nil
}

// Align aligns a batch of pairs on the selected backend. Results are
// positionally aligned with the input.
//
// Align is a thin wrapper over a cached default Aligner engine: the first
// call for a given backend/device/thread shape builds the engine, later
// calls reuse it.
//
// Deprecated: high-throughput callers should hold their own engine
// (NewAligner) and use the context- and Config-threaded
// Align/AlignInto/NewStream.
func Align(pairs []Pair, opt Options) ([]Alignment, Stats, error) {
	a, release, err := defaultEngine(opt.engineOptions())
	if err != nil {
		return nil, Stats{}, err
	}
	defer release()
	return a.align(context.Background(), nil, pairs, opt.config())
}

func toAlignment(r xdrop.SeedResult) Alignment {
	return Alignment{
		Score:  r.Score,
		QBegin: r.QBegin, QEnd: r.QEnd,
		TBegin: r.TBegin, TEnd: r.TEnd,
		Cells: r.Cells(),
	}
}
