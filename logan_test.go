package logan

import (
	"bytes"
	"math/rand"
	"testing"

	"logan/internal/seq"
)

func TestAlignPairIdentical(t *testing.T) {
	s := []byte("ACGTACGTACGTACGTACGT")
	a, err := AlignPair(s, s, 0, 0, 5, DefaultOptions(20))
	if err != nil {
		t.Fatal(err)
	}
	if a.Score != int32(len(s)) {
		t.Fatalf("score = %d, want %d", a.Score, len(s))
	}
	if a.QBegin != 0 || a.QEnd != len(s) || a.TBegin != 0 || a.TEnd != len(s) {
		t.Fatalf("extents %+v", a)
	}
}

func TestAlignPairValidation(t *testing.T) {
	if _, err := AlignPair([]byte("ACGX"), []byte("ACGT"), 0, 0, 2, DefaultOptions(10)); err == nil {
		t.Error("accepted invalid query base")
	}
	if _, err := AlignPair([]byte("ACGT"), []byte("AC!T"), 0, 0, 2, DefaultOptions(10)); err == nil {
		t.Error("accepted invalid target base")
	}
	if _, err := AlignPair([]byte("ACGT"), []byte("ACGT"), 3, 0, 4, DefaultOptions(10)); err == nil {
		t.Error("accepted out-of-range seed")
	}
}

func makePairs(n int) []Pair {
	rng := rand.New(rand.NewSource(7))
	raw := seq.RandPairSet(rng, seq.PairSetOptions{
		N: n, MinLen: 200, MaxLen: 600, ErrorRate: 0.15, SeedLen: 17,
	})
	out := make([]Pair, n)
	for i, p := range raw {
		out[i] = Pair{
			Query: []byte(p.Query), Target: []byte(p.Target),
			SeedQ: p.SeedQPos, SeedT: p.SeedTPos, SeedLen: p.SeedLen,
		}
	}
	return out
}

func TestAlignBackendsAgree(t *testing.T) {
	pairs := makePairs(24)
	opt := DefaultOptions(50)
	cpu, cpuStats, err := Align(pairs, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Backend = GPU
	opt.GPUs = 2
	gpu, gpuStats, err := Align(pairs, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pairs {
		if cpu[i] != gpu[i] {
			t.Fatalf("pair %d: cpu %+v != gpu %+v", i, cpu[i], gpu[i])
		}
	}
	if cpuStats.Cells != gpuStats.Cells {
		t.Fatalf("cells: cpu %d, gpu %d", cpuStats.Cells, gpuStats.Cells)
	}
	if gpuStats.DeviceTime <= 0 {
		t.Fatal("GPU backend reported no modeled device time")
	}
	if cpuStats.GCUPS <= 0 || gpuStats.GCUPS <= 0 {
		t.Fatal("GCUPS not reported")
	}
}

func TestAlignEmptyBatch(t *testing.T) {
	out, stats, err := Align(nil, DefaultOptions(10))
	if err != nil || len(out) != 0 || stats.Pairs != 0 {
		t.Fatalf("empty batch: %v %v %v", out, stats, err)
	}
}

func TestAlignScoreMeaning(t *testing.T) {
	// A mutated pair must score below the identical pair but well above
	// zero at moderate X.
	rng := rand.New(rand.NewSource(8))
	base := seq.RandSeq(rng, 500)
	mut := seq.Mutate(rng, base, seq.UniformProfile(0.1))
	// Plant the seed.
	copy(mut[250:267], base[250:267])
	a, err := AlignPair([]byte(base), []byte(mut), 250, 250, 17, DefaultOptions(100))
	if err != nil {
		t.Fatal(err)
	}
	if a.Score <= 17 || a.Score > 500 {
		t.Fatalf("mutated score = %d", a.Score)
	}
	ident, _ := AlignPair([]byte(base), []byte(base), 250, 250, 17, DefaultOptions(100))
	if a.Score >= ident.Score {
		t.Fatalf("mutated %d >= identical %d", a.Score, ident.Score)
	}
	if !bytes.Equal(base[a.QBegin:a.QBegin+1], base[a.QBegin:a.QBegin+1]) {
		t.Fatal("unreachable")
	}
}

func TestDefaultScoringFallback(t *testing.T) {
	// Zero-valued scoring fields select +1/-1/-1.
	opt := Options{X: 10}
	s := []byte("ACGTACGTAC")
	a, err := AlignPair(s, s, 0, 0, 4, opt)
	if err != nil {
		t.Fatal(err)
	}
	if a.Score != int32(len(s)) {
		t.Fatalf("default scoring score = %d", a.Score)
	}
}
