package logan

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"logan/internal/bella"
	"logan/internal/genome"
	"logan/internal/seq"
)

// overlapTestSet builds a deterministic simulated read set with enough
// overlaps (and repeat-induced spurious candidates) to exercise every
// pipeline stage.
func overlapTestSet(t testing.TB, seed int64, genomeLen int) genome.ReadSet {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := genome.Synthetic(rng, "t", genome.SyntheticOptions{Length: genomeLen, RepeatFrac: 0.05, RepeatLen: 1200})
	return genome.Simulate(rng, g, genome.SimOptions{
		Coverage: 5, MinLen: 900, MaxLen: 2200, ErrorRate: 0.12,
	})
}

func readsOf(rs genome.ReadSet) []Read {
	reads := make([]Read, len(rs.Reads))
	for i, r := range rs.Reads {
		reads[i] = Read{Name: r.Name(), Seq: r.Seq}
	}
	return reads
}

func overlapTestConfig(x int32) OverlapConfig {
	cfg := DefaultOverlapConfig(5, 0.12, x)
	cfg.MinOverlap = 400
	return cfg
}

// TestOverlapperMatchesInternalPipeline is the golden identity: the public
// Overlapper and the internal bella pipeline must produce byte-identical
// PAF on the same reads, for the engine-direct path on CPU and Hybrid
// engines and for the coalescer-routed path.
func TestOverlapperMatchesInternalPipeline(t *testing.T) {
	rs := overlapTestSet(t, 11, 60_000)
	cfg := overlapTestConfig(20)

	// Reference: the internal pipeline with the internal CPU aligner.
	bcfg := cfg.bellaConfig()
	ref, err := bella.Run(context.Background(), rs, bcfg, bella.CPUAligner{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Overlaps) == 0 {
		t.Fatal("reference pipeline produced no overlaps; test set too small")
	}
	var want bytes.Buffer
	if err := bella.WritePAF(&want, rs.Reads, ref.Overlaps); err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		name      string
		opt       EngineOptions
		coalesced bool
	}{
		{"cpu-direct", EngineOptions{Backend: CPU}, false},
		{"hybrid-direct", EngineOptions{Backend: Hybrid, GPUs: 2}, false},
		{"cpu-coalesced", EngineOptions{Backend: CPU}, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			eng, err := NewAligner(tc.opt)
			if err != nil {
				t.Fatal(err)
			}
			defer eng.Close()
			var oopt OverlapperOptions
			if tc.coalesced {
				coal := eng.NewCoalescer(CoalescerOptions{MaxWait: time.Millisecond})
				defer coal.Close()
				oopt.Coalescer = coal
			}
			ov, err := NewOverlapper(eng, oopt)
			if err != nil {
				t.Fatal(err)
			}
			res, err := ov.Run(context.Background(), readsOf(rs), cfg)
			if err != nil {
				t.Fatal(err)
			}
			var got bytes.Buffer
			if err := WritePAF(&got, res.Records); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got.Bytes(), want.Bytes()) {
				t.Errorf("PAF diverges from the internal pipeline\npublic (%d lines):\n%.400s\ninternal (%d lines):\n%.400s",
					bytes.Count(got.Bytes(), []byte{'\n'}), got.String(),
					bytes.Count(want.Bytes(), []byte{'\n'}), want.String())
			}
			if res.Stats.CandidatePairs != ref.Candidates || res.Stats.ReliableKmers != ref.Reliable {
				t.Errorf("stats diverge: got %d cands/%d kmers, want %d/%d",
					res.Stats.CandidatePairs, res.Stats.ReliableKmers, ref.Candidates, ref.Reliable)
			}
		})
	}
}

// TestOverlapperRunFasta round-trips the read set through FASTA text and
// checks the result is identical to in-memory ingestion, including read
// names in the PAF.
func TestOverlapperRunFasta(t *testing.T) {
	rs := overlapTestSet(t, 12, 40_000)
	cfg := overlapTestConfig(15)
	eng, err := NewAligner(EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	ov, err := NewOverlapper(eng, OverlapperOptions{})
	if err != nil {
		t.Fatal(err)
	}

	memRes, err := ov.Run(context.Background(), readsOf(rs), cfg)
	if err != nil {
		t.Fatal(err)
	}

	var fa bytes.Buffer
	if err := seq.WriteFasta(&fa, rs.Records()); err != nil {
		t.Fatal(err)
	}
	var parsed int
	cfg.OnProgress = func(p OverlapProgress) {
		if p.Stage == StageIngest {
			parsed = p.ReadsParsed
		}
	}
	faRes, err := ov.RunFasta(context.Background(), &fa, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if parsed != len(rs.Reads) {
		t.Errorf("ingest progress reported %d reads, want %d", parsed, len(rs.Reads))
	}

	var a, b bytes.Buffer
	if err := WritePAF(&a, memRes.Records); err != nil {
		t.Fatal(err)
	}
	if err := WritePAF(&b, faRes.Records); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("FASTA round trip changed the PAF output")
	}
	if len(faRes.Records) > 0 && !strings.HasPrefix(faRes.Records[0].QName, "read") {
		t.Errorf("FASTA names lost: first qname %q", faRes.Records[0].QName)
	}
}

// TestOverlapperProgress checks the progress contract: stages in order,
// monotone extension counters, final counters matching the result.
func TestOverlapperProgress(t *testing.T) {
	rs := overlapTestSet(t, 13, 40_000)
	cfg := overlapTestConfig(15)
	cfg.BatchPairs = 8 // many chunks

	eng, err := NewAligner(EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	ov, _ := NewOverlapper(eng, OverlapperOptions{})

	var mu sync.Mutex
	var stages []OverlapStage
	lastDone := -1
	var final OverlapProgress
	cfg.OnProgress = func(p OverlapProgress) {
		mu.Lock()
		defer mu.Unlock()
		if len(stages) == 0 || stages[len(stages)-1] != p.Stage {
			stages = append(stages, p.Stage)
		}
		if p.Stage == StageAlign {
			if p.ExtensionsDone < lastDone {
				t.Errorf("extension progress went backwards: %d after %d", p.ExtensionsDone, lastDone)
			}
			lastDone = p.ExtensionsDone
			if p.ExtensionsTotal == 0 {
				t.Error("align progress with zero ExtensionsTotal")
			}
		}
		final = p
	}
	res, err := ov.Run(context.Background(), readsOf(rs), cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := []OverlapStage{StageCount, StagePrune, StageMatrix, StageSpGEMM, StageBinning, StageAlign, StageFilter, StageDone}
	if len(stages) != len(want) {
		t.Fatalf("stages %v, want %v", stages, want)
	}
	for i := range want {
		if stages[i] != want[i] {
			t.Fatalf("stages %v, want %v", stages, want)
		}
	}
	if final.Stage != StageDone || final.Overlaps != len(res.Records) {
		t.Errorf("final progress %+v does not match %d records", final, len(res.Records))
	}
	if final.ExtensionsDone != final.ExtensionsTotal || final.ExtensionsTotal != res.Stats.CandidatePairs {
		t.Errorf("final extensions %d/%d, want %d/%d", final.ExtensionsDone, final.ExtensionsTotal,
			res.Stats.CandidatePairs, res.Stats.CandidatePairs)
	}
}

// TestOverlapperCancel cancels mid-extension and expects the run to stop
// promptly with the context's error.
func TestOverlapperCancel(t *testing.T) {
	rs := overlapTestSet(t, 14, 60_000)
	cfg := overlapTestConfig(25)
	cfg.BatchPairs = 4

	eng, err := NewAligner(EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	ov, _ := NewOverlapper(eng, OverlapperOptions{})

	ctx, cancel := context.WithCancel(context.Background())
	cfg.OnProgress = func(p OverlapProgress) {
		// Cancel as soon as the extension stage has made some progress but
		// before it finishes.
		if p.Stage == StageAlign && p.ExtensionsDone > 0 && p.ExtensionsDone < p.ExtensionsTotal {
			cancel()
		}
	}
	_, err = ov.Run(ctx, readsOf(rs), cfg)
	if err == nil {
		t.Fatal("cancelled run returned nil error (extension stage may have been too small to interrupt)")
	}
	if ctx.Err() == nil {
		t.Skip("pipeline finished before the cancellation point; data set too small")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestOverlapperValidation covers the config/constructor error paths.
func TestOverlapperValidation(t *testing.T) {
	eng, err := NewAligner(EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if _, err := NewOverlapper(nil, OverlapperOptions{}); err == nil {
		t.Error("nil engine accepted")
	}
	ov, _ := NewOverlapper(eng, OverlapperOptions{})

	if _, err := ov.Run(context.Background(), nil, OverlapConfig{}); err == nil {
		t.Error("zero config accepted")
	}
	bad := overlapTestConfig(10)
	bad.Scoring = AffineScoring(1, -1, -2, -1)
	if _, err := ov.Run(context.Background(), nil, bad); err == nil {
		t.Error("affine overlap scoring accepted")
	}
	badK := overlapTestConfig(10)
	badK.K = 99
	if _, err := ov.Run(context.Background(), nil, badK); err == nil {
		t.Error("k=99 accepted")
	}
	okCfg := overlapTestConfig(10)
	if _, err := ov.Run(context.Background(), []Read{{Name: "r", Seq: []byte("AC!GT")}}, okCfg); err == nil {
		t.Error("invalid base accepted")
	}

	coal := eng.NewCoalescer(CoalescerOptions{MaxWait: time.Millisecond})
	defer coal.Close()
	ovc, _ := NewOverlapper(eng, OverlapperOptions{Coalescer: coal})
	tb := overlapTestConfig(10)
	tb.Traceback = true
	if _, err := ovc.Run(context.Background(), nil, tb); err != ErrTracebackUnavailable {
		t.Errorf("coalesced traceback: err = %v, want ErrTracebackUnavailable", err)
	}

	// Empty input is a valid, empty run.
	res, err := ov.Run(context.Background(), nil, okCfg)
	if err != nil || len(res.Records) != 0 {
		t.Errorf("empty run: %v, %d records", err, len(res.Records))
	}
}

// TestOverlapperTraceback checks the CIGAR post-pass on the engine-direct
// path agrees with the internal pipeline.
func TestOverlapperTraceback(t *testing.T) {
	rs := overlapTestSet(t, 15, 30_000)
	cfg := overlapTestConfig(15)
	cfg.Traceback = true

	bcfg := cfg.bellaConfig()
	ref, err := bella.Run(context.Background(), rs, bcfg, bella.CPUAligner{})
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := bella.WritePAF(&want, rs.Reads, ref.Overlaps); err != nil {
		t.Fatal(err)
	}

	eng, err := NewAligner(EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	ov, _ := NewOverlapper(eng, OverlapperOptions{})
	res, err := ov.Run(context.Background(), readsOf(rs), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	if err := WritePAF(&got, res.Records); err != nil {
		t.Fatal(err)
	}
	if got.String() != want.String() {
		t.Error("traceback PAF diverges from the internal pipeline")
	}
	foundCigar := false
	for _, r := range res.Records {
		if r.CIGAR != "" {
			foundCigar = true
			break
		}
	}
	if len(res.Records) > 0 && !foundCigar {
		t.Error("traceback requested but no record carries a CIGAR")
	}
}

// TestOverlapSharesEngine proves overlap and Align traffic interleave on
// one engine: an overlap run and concurrent Align batches both complete
// with correct results.
func TestOverlapSharesEngine(t *testing.T) {
	rs := overlapTestSet(t, 16, 40_000)
	cfg := overlapTestConfig(15)

	eng, err := NewAligner(EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	ov, _ := NewOverlapper(eng, OverlapperOptions{})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		pairs := []Pair{{
			Query:  []byte("ACGTACGTACGTACGT"),
			Target: []byte("ACGTACGTACGTACGT"),
			SeedQ:  4, SeedT: 4, SeedLen: 4,
		}}
		for {
			select {
			case <-stop:
				return
			default:
			}
			out, _, err := eng.Align(context.Background(), pairs, DefaultConfig(20))
			if err != nil {
				t.Errorf("concurrent Align: %v", err)
				return
			}
			if out[0].Score != 16 {
				t.Errorf("concurrent Align score %d, want 16", out[0].Score)
				return
			}
		}
	}()
	res, err := ov.Run(context.Background(), readsOf(rs), cfg)
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) == 0 {
		t.Error("overlap run under concurrent Align traffic found nothing")
	}
}
